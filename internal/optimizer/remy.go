package optimizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Default search knobs.
const (
	// DefaultEpochsPerSplit is K in §4.3 step 4: every K epochs the
	// most-used rule is subdivided.
	DefaultEpochsPerSplit = 4
	// DefaultCandidateRungs controls the geometric ladder of candidate
	// action modifications evaluated per improvement step (2 rungs per
	// direction per component ≈ the paper's "roughly 100 candidates").
	DefaultCandidateRungs = 2
	// DefaultImprovementIters bounds how many times a single rule's action
	// is re-improved before moving on.
	DefaultImprovementIters = 5
)

// Progress records one optimization round for logging and the EXPERIMENTS.md
// training record.
type Progress struct {
	Round     int
	Epoch     int
	Rules     int
	Score     float64
	Improved  int // actions improved this round
	DidSplit  bool
	Evaluated int // candidate trees evaluated this round
	// Stats holds this round's evaluator counters (not cumulative): how
	// many specimen simulations actually ran and how many were served by
	// the memo cache or avoided by usage pruning.
	Stats EvalStats
}

func (p Progress) String() string {
	return fmt.Sprintf("round=%d epoch=%d rules=%d score=%.4f improved=%d evaluated=%d split=%v",
		p.Round, p.Epoch, p.Rules, p.Score, p.Improved, p.Evaluated, p.DidSplit)
}

// Remy is the offline designer. Construct it with New, adjust the public
// knobs if desired, then call Optimize.
type Remy struct {
	Config    ConfigRange
	Objective stats.Objective

	// Workers bounds concurrent specimen simulations (0 = NumCPU-1).
	Workers int
	// Seed makes the whole design run reproducible.
	Seed int64
	// CandidateRungs, ImprovementIters and EpochsPerSplit tune the search.
	CandidateRungs   int
	ImprovementIters int
	EpochsPerSplit   int
	// MaxRules stops subdividing once the table reaches this many rules
	// (0 = unlimited). The paper's general-purpose RemyCCs have 162–204.
	MaxRules int
	// StartRound and StartEpoch let a checkpointed run resume exactly where
	// it stopped: Optimize numbers its rounds from StartRound — deriving
	// the same per-round specimen sets an uninterrupted run would have
	// drawn — and starts the rule-table epoch counter at StartEpoch. Both
	// are zero for a fresh run.
	StartRound int
	StartEpoch int
	// Backend, when non-nil, executes specimen simulation batches instead
	// of the in-process pool (see Evaluator.Backend). Switching backends —
	// in-process one run, distributed the next — never changes the trained
	// tree, so it composes freely with checkpoint/resume.
	Backend BatchRunner
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// OnRound, if non-nil, observes each round's Progress (with its
	// per-round evaluator counters) as soon as the round completes. cmd/remy
	// uses it for wall-clock progress reporting, which must live outside
	// this package: the optimizer itself never reads the wall clock.
	OnRound func(Progress)

	epoch     int
	evalStats EvalStats
}

// New returns a designer with the paper's default knobs.
func New(cfg ConfigRange, obj stats.Objective) *Remy {
	return &Remy{
		Config:           cfg,
		Objective:        obj,
		Workers:          defaultWorkers(),
		Seed:             1,
		CandidateRungs:   DefaultCandidateRungs,
		ImprovementIters: DefaultImprovementIters,
		EpochsPerSplit:   DefaultEpochsPerSplit,
	}
}

func (r *Remy) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Epoch returns the rule-table epoch counter after the last Optimize call
// (checkpointing saves it so a resumed run can continue the count).
func (r *Remy) Epoch() int { return r.epoch }

// EvalStats returns the evaluator work counters of the last Optimize call:
// how many specimen simulations ran, and how many were avoided by the memo
// cache and by usage pruning.
func (r *Remy) EvalStats() EvalStats { return r.evalStats }

// Optimize runs the design loop for the given number of rounds, starting
// from start (or the initial single-rule RemyCC when start is nil), and
// returns the best tree found together with the per-round progress log.
//
// One round is one pass of the paper's procedure: mark all rules with the
// current epoch, repeatedly improve the most-used unimproved rule until none
// remain, then advance the epoch and — every EpochsPerSplit epochs —
// subdivide the most-used rule at the median memory value that triggered it.
func (r *Remy) Optimize(start *core.WhiskerTree, rounds int) (*core.WhiskerTree, []Progress, error) {
	if err := r.Config.Validate(); err != nil {
		return nil, nil, err
	}
	if rounds < 1 {
		return nil, nil, fmt.Errorf("optimizer: rounds must be positive, got %d", rounds)
	}
	tree := start
	if tree == nil {
		tree = core.DefaultWhiskerTree()
	}
	tree = tree.Clone()

	eval := NewEvaluator(r.Objective)
	eval.Workers = r.Workers
	eval.Backend = r.Backend
	r.epoch = r.StartEpoch

	// Burn the specimen streams of already-completed rounds so a resumed
	// run draws exactly the specimen sets an uninterrupted run would have.
	rng := sim.NewRNG(r.Seed)
	for done := 0; done < r.StartRound; done++ {
		rng.Split(int64(done))
	}

	var progress []Progress
	var prevStats EvalStats
	for i := 0; i < rounds; i++ {
		round := r.StartRound + i
		specimens := r.Config.SampleSet(r.Config.Specimens, rng.Split(int64(round)))
		p, err := r.optimizeRound(tree, eval, specimens, round)
		if err != nil {
			return nil, nil, err
		}
		cum := eval.Stats()
		p.Stats = cum.Sub(prevStats)
		prevStats = cum
		progress = append(progress, p)
		r.logf("%s", p)
		if r.OnRound != nil {
			r.OnRound(p)
		}
	}
	r.evalStats = eval.Stats()
	r.logf("evaluator: %s", r.evalStats)
	return tree, progress, nil
}

// optimizeRound mutates tree in place through one round of the procedure.
func (r *Remy) optimizeRound(tree *core.WhiskerTree, eval *Evaluator, specimens []Specimen, round int) (Progress, error) {
	prog := Progress{Round: round, Epoch: r.epoch}

	// Step 1: set all rules to the current epoch.
	tree.SetAllEpochs(r.epoch)

	// Steps 2–3: repeatedly pick the most-used rule of this epoch and
	// improve its action until no candidate improves the score, then retire
	// it from this epoch. One usage evaluation is performed up front;
	// afterwards the evaluation of the current tree is carried through the
	// loop — improveAction returns the evaluation matching the tree it
	// leaves behind (unchanged when nothing was adopted, assembled from the
	// winning candidate's cached runs when something was), so the
	// re-evaluation the pre-optimization loop ran at the top of every pick
	// iteration is never a fresh simulation batch.
	evaluation, err := eval.EvaluateUsage(tree, specimens, r.Config)
	if err != nil {
		return prog, err
	}
	prog.Evaluated++
	for {
		idx := evaluation.MostUsed(tree, r.epoch)
		if idx < 0 {
			prog.Score = evaluation.Score
			break
		}
		improved, evaluated, next, err := r.improveAction(tree, eval, specimens, idx, evaluation)
		if err != nil {
			return prog, err
		}
		evaluation = next
		prog.Evaluated += evaluated
		if improved {
			prog.Improved++
		}
		if err := tree.SetEpoch(idx, r.epoch+1); err != nil {
			return prog, err
		}
	}

	// Step 4: advance the global epoch; every K epochs, subdivide. The
	// split needs the median memory point that triggered the most-used
	// rule, so this is the one evaluation that collects memory samples.
	r.epoch++
	if r.epoch%r.epochsPerSplit() == 0 && (r.MaxRules <= 0 || tree.NumWhiskers() < r.MaxRules) {
		full, err := eval.Evaluate(tree, specimens, r.Config)
		if err != nil {
			return prog, err
		}
		prog.Evaluated++
		idx := full.MostUsedAny()
		if idx >= 0 {
			median, ok := full.MedianMemory(idx)
			if !ok {
				w, _ := tree.Whisker(idx)
				median = w.Domain.Midpoint()
			}
			if err := tree.Split(idx, median); err != nil {
				return prog, err
			}
			prog.DidSplit = true
		}
	}
	prog.Rules = tree.NumWhiskers()
	prog.Epoch = r.epoch
	return prog, nil
}

// improveAction performs §4.3 step 3 for one rule: evaluate a ladder of
// candidate modifications to the rule's action on the same specimen
// networks, adopt the best improvement, and repeat until nothing improves.
// Candidates are built copy-on-write (structure shared with the incumbent)
// and scored through ScoreCandidates, which skips the specimens the
// modified rule cannot affect. It returns whether any improvement was
// adopted, how many candidate trees were evaluated, and the evaluation of
// the tree as it stands on return — the caller reuses it instead of
// re-evaluating.
func (r *Remy) improveAction(tree *core.WhiskerTree, eval *Evaluator, specimens []Specimen, idx int, current Evaluation) (bool, int, Evaluation, error) {
	improvedAny := false
	evaluated := 0
	bestScore := current.Score

	iters := r.ImprovementIters
	if iters <= 0 {
		iters = DefaultImprovementIters
	}
	rungs := r.CandidateRungs
	if rungs <= 0 {
		rungs = DefaultCandidateRungs
	}

	for iter := 0; iter < iters; iter++ {
		w, err := tree.Whisker(idx)
		if err != nil {
			return improvedAny, evaluated, current, err
		}
		candidates := w.Action.Neighbors(rungs)
		if len(candidates) == 0 {
			break
		}
		trees := make([]*core.WhiskerTree, len(candidates))
		for i, cand := range candidates {
			t, err := tree.WithAction(idx, cand)
			if err != nil {
				return improvedAny, evaluated, current, err
			}
			trees[i] = t
		}
		scores, err := eval.ScoreCandidates(current, trees, idx, specimens, r.Config)
		if err != nil {
			return improvedAny, evaluated, current, err
		}
		evaluated += len(trees)

		bestCand := -1
		for i, s := range scores {
			if s > bestScore {
				bestScore = s
				bestCand = i
			}
		}
		if bestCand < 0 {
			break
		}
		if err := tree.SetAction(idx, candidates[bestCand]); err != nil {
			return improvedAny, evaluated, current, err
		}
		improvedAny = true
		// Refresh the incumbent evaluation: every specimen of the adopted
		// candidate was either simulated just now or transferred from the
		// previous incumbent, so this is served entirely from the cache.
		current, err = eval.EvaluateUsage(tree, specimens, r.Config)
		if err != nil {
			return improvedAny, evaluated, current, err
		}
	}
	return improvedAny, evaluated, current, nil
}

func (r *Remy) epochsPerSplit() int {
	if r.EpochsPerSplit <= 0 {
		return DefaultEpochsPerSplit
	}
	return r.EpochsPerSplit
}
