package optimizer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Default search knobs.
const (
	// DefaultEpochsPerSplit is K in §4.3 step 4: every K epochs the
	// most-used rule is subdivided.
	DefaultEpochsPerSplit = 4
	// DefaultCandidateRungs controls the geometric ladder of candidate
	// action modifications evaluated per improvement step (2 rungs per
	// direction per component ≈ the paper's "roughly 100 candidates").
	DefaultCandidateRungs = 2
	// DefaultImprovementIters bounds how many times a single rule's action
	// is re-improved before moving on.
	DefaultImprovementIters = 5
)

// Progress records one optimization round for logging and the EXPERIMENTS.md
// training record.
type Progress struct {
	Round     int
	Epoch     int
	Rules     int
	Score     float64
	Improved  int // actions improved this round
	DidSplit  bool
	Evaluated int // candidate trees evaluated this round
}

func (p Progress) String() string {
	return fmt.Sprintf("round=%d epoch=%d rules=%d score=%.4f improved=%d evaluated=%d split=%v",
		p.Round, p.Epoch, p.Rules, p.Score, p.Improved, p.Evaluated, p.DidSplit)
}

// Remy is the offline designer. Construct it with New, adjust the public
// knobs if desired, then call Optimize.
type Remy struct {
	Config    ConfigRange
	Objective stats.Objective

	// Workers bounds concurrent specimen simulations (0 = NumCPU-1).
	Workers int
	// Seed makes the whole design run reproducible.
	Seed int64
	// CandidateRungs, ImprovementIters and EpochsPerSplit tune the search.
	CandidateRungs   int
	ImprovementIters int
	EpochsPerSplit   int
	// MaxRules stops subdividing once the table reaches this many rules
	// (0 = unlimited). The paper's general-purpose RemyCCs have 162–204.
	MaxRules int
	// Logf, if non-nil, receives progress lines.
	Logf func(format string, args ...any)

	epoch int
}

// New returns a designer with the paper's default knobs.
func New(cfg ConfigRange, obj stats.Objective) *Remy {
	return &Remy{
		Config:           cfg,
		Objective:        obj,
		Workers:          defaultWorkers(),
		Seed:             1,
		CandidateRungs:   DefaultCandidateRungs,
		ImprovementIters: DefaultImprovementIters,
		EpochsPerSplit:   DefaultEpochsPerSplit,
	}
}

func (r *Remy) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Optimize runs the design loop for the given number of rounds, starting
// from start (or the initial single-rule RemyCC when start is nil), and
// returns the best tree found together with the per-round progress log.
//
// One round is one pass of the paper's procedure: mark all rules with the
// current epoch, repeatedly improve the most-used unimproved rule until none
// remain, then advance the epoch and — every EpochsPerSplit epochs —
// subdivide the most-used rule at the median memory value that triggered it.
func (r *Remy) Optimize(start *core.WhiskerTree, rounds int) (*core.WhiskerTree, []Progress, error) {
	if err := r.Config.Validate(); err != nil {
		return nil, nil, err
	}
	if rounds < 1 {
		return nil, nil, fmt.Errorf("optimizer: rounds must be positive, got %d", rounds)
	}
	tree := start
	if tree == nil {
		tree = core.DefaultWhiskerTree()
	}
	tree = tree.Clone()

	eval := NewEvaluator(r.Objective)
	eval.Workers = r.Workers
	rng := sim.NewRNG(r.Seed)

	var progress []Progress
	for round := 0; round < rounds; round++ {
		specimens := r.Config.SampleSet(r.Config.Specimens, rng.Split(int64(round)))
		p, err := r.optimizeRound(tree, eval, specimens, round)
		if err != nil {
			return nil, nil, err
		}
		progress = append(progress, p)
		r.logf("%s", p)
	}
	return tree, progress, nil
}

// optimizeRound mutates tree in place through one round of the procedure.
func (r *Remy) optimizeRound(tree *core.WhiskerTree, eval *Evaluator, specimens []Specimen, round int) (Progress, error) {
	prog := Progress{Round: round, Epoch: r.epoch}

	// Step 1: set all rules to the current epoch.
	tree.SetAllEpochs(r.epoch)

	// Steps 2–3: repeatedly pick the most-used rule of this epoch and
	// improve its action until no candidate improves the score, then retire
	// it from this epoch.
	for {
		evaluation, err := eval.Evaluate(tree, specimens, r.Config)
		if err != nil {
			return prog, err
		}
		prog.Evaluated++
		idx := evaluation.MostUsed(tree, r.epoch)
		if idx < 0 {
			prog.Score = evaluation.Score
			break
		}
		improved, evaluated, err := r.improveAction(tree, eval, specimens, idx, evaluation.Score)
		if err != nil {
			return prog, err
		}
		prog.Evaluated += evaluated
		if improved {
			prog.Improved++
		}
		if err := tree.SetEpoch(idx, r.epoch+1); err != nil {
			return prog, err
		}
	}

	// Step 4: advance the global epoch; every K epochs, subdivide.
	r.epoch++
	if r.epoch%r.epochsPerSplit() == 0 && (r.MaxRules <= 0 || tree.NumWhiskers() < r.MaxRules) {
		evaluation, err := eval.Evaluate(tree, specimens, r.Config)
		if err != nil {
			return prog, err
		}
		prog.Evaluated++
		idx := evaluation.MostUsedAny()
		if idx >= 0 {
			median, ok := evaluation.MedianMemory(idx)
			if !ok {
				w, _ := tree.Whisker(idx)
				median = w.Domain.Midpoint()
			}
			if err := tree.Split(idx, median); err != nil {
				return prog, err
			}
			prog.DidSplit = true
		}
	}
	prog.Rules = tree.NumWhiskers()
	prog.Epoch = r.epoch
	return prog, nil
}

// improveAction performs §4.3 step 3 for one rule: evaluate a ladder of
// candidate modifications to the rule's action on the same specimen
// networks, adopt the best improvement, and repeat until nothing improves.
// It returns whether any improvement was adopted and how many candidate
// trees were evaluated.
func (r *Remy) improveAction(tree *core.WhiskerTree, eval *Evaluator, specimens []Specimen, idx int, baseline float64) (bool, int, error) {
	improvedAny := false
	evaluated := 0
	bestScore := baseline

	iters := r.ImprovementIters
	if iters <= 0 {
		iters = DefaultImprovementIters
	}
	rungs := r.CandidateRungs
	if rungs <= 0 {
		rungs = DefaultCandidateRungs
	}

	for iter := 0; iter < iters; iter++ {
		w, err := tree.Whisker(idx)
		if err != nil {
			return improvedAny, evaluated, err
		}
		candidates := w.Action.Neighbors(rungs)
		if len(candidates) == 0 {
			break
		}
		trees := make([]*core.WhiskerTree, len(candidates))
		for i, cand := range candidates {
			t := tree.Clone()
			if err := t.SetAction(idx, cand); err != nil {
				return improvedAny, evaluated, err
			}
			trees[i] = t
		}
		scores, err := eval.ScoreMany(trees, specimens, r.Config)
		if err != nil {
			return improvedAny, evaluated, err
		}
		evaluated += len(trees)

		bestCand := -1
		for i, s := range scores {
			if s > bestScore {
				bestScore = s
				bestCand = i
			}
		}
		if bestCand < 0 {
			break
		}
		if err := tree.SetAction(idx, candidates[bestCand]); err != nil {
			return improvedAny, evaluated, err
		}
		improvedAny = true
	}
	return improvedAny, evaluated, nil
}

func (r *Remy) epochsPerSplit() int {
	if r.EpochsPerSplit <= 0 {
		return DefaultEpochsPerSplit
	}
	return r.EpochsPerSplit
}
