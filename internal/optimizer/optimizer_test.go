package optimizer

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// tinyConfig is a deliberately small design range so tests finish quickly:
// short specimens, few senders, moderate rates.
func tinyConfig() ConfigRange {
	return ConfigRange{
		MinSenders:           2,
		MaxSenders:           2,
		LinkRateBps:          Range{10e6, 10e6},
		RTTMs:                Range{100, 100},
		OnMode:               workload.ByTime,
		MeanOnSeconds:        5,
		MeanOffSecs:          1,
		QueueCapacityPackets: 1000,
		SpecimenDuration:     4 * sim.Second,
		Specimens:            2,
	}
}

func TestRangeAndConfigValidation(t *testing.T) {
	if (Range{1, 2}).Validate() != nil {
		t.Error("valid range rejected")
	}
	if (Range{0, 2}).Validate() == nil || (Range{3, 2}).Validate() == nil {
		t.Error("invalid ranges accepted")
	}
	if (Range{1, 2}).String() == "" {
		t.Error("Range.String")
	}
	g := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		v := (Range{5, 7}).Sample(g)
		if v < 5 || v >= 7 {
			t.Fatalf("range sample %v out of bounds", v)
		}
	}
	if (Range{5, 5}).Sample(g) != 5 {
		t.Error("degenerate range sample")
	}

	if err := DumbbellDesignRange().Validate(); err != nil {
		t.Errorf("dumbbell design range invalid: %v", err)
	}
	if err := DatacenterDesignRange().Validate(); err != nil {
		t.Errorf("datacenter design range invalid: %v", err)
	}
	if err := LinkSpeedDesignRange(4.7e6, 47e6).Validate(); err != nil {
		t.Errorf("link-speed design range invalid: %v", err)
	}
	bad := DumbbellDesignRange()
	bad.MinSenders = 0
	if bad.Validate() == nil {
		t.Error("zero MinSenders accepted")
	}
	bad = DumbbellDesignRange()
	bad.MaxSenders = 0
	if bad.Validate() == nil {
		t.Error("MaxSenders < MinSenders accepted")
	}
	bad = DumbbellDesignRange()
	bad.MeanOnSeconds = 0
	if bad.Validate() == nil {
		t.Error("zero MeanOnSeconds accepted")
	}
	bad = DatacenterDesignRange()
	bad.MeanOnBytes = 0
	if bad.Validate() == nil {
		t.Error("zero MeanOnBytes accepted")
	}
	bad = DumbbellDesignRange()
	bad.MeanOffSecs = 0
	if bad.Validate() == nil {
		t.Error("zero MeanOffSecs accepted")
	}
	bad = DumbbellDesignRange()
	bad.SpecimenDuration = 0
	if bad.Validate() == nil {
		t.Error("zero duration accepted")
	}
	bad = DumbbellDesignRange()
	bad.Specimens = 0
	if bad.Validate() == nil {
		t.Error("zero specimens accepted")
	}
	bad = DumbbellDesignRange()
	bad.OnMode = workload.OnMode(9)
	if bad.Validate() == nil {
		t.Error("unknown on mode accepted")
	}
}

func TestConfigRangeSampling(t *testing.T) {
	cfg := DumbbellDesignRange()
	g := sim.NewRNG(2)
	specs := cfg.SampleSet(50, g)
	if len(specs) != 50 {
		t.Fatal("SampleSet size")
	}
	for _, s := range specs {
		if s.Senders < 1 || s.Senders > 16 {
			t.Errorf("senders %d out of range", s.Senders)
		}
		if s.LinkRateBps < 10e6 || s.LinkRateBps >= 20e6 {
			t.Errorf("rate %v out of range", s.LinkRateBps)
		}
		if s.RTTMs < 100 || s.RTTMs >= 200 {
			t.Errorf("rtt %v out of range", s.RTTMs)
		}
		if s.String() == "" {
			t.Error("Specimen.String")
		}
	}
	// Workload spec conversion to the declarative scenario form.
	spec := cfg.scenarioWorkload()
	if spec.Mode != scenario.ModeByTime || spec.On.Mean != 5 || spec.Off.Mean != 5 {
		t.Errorf("scenarioWorkload = %v", spec)
	}
	dc := DatacenterDesignRange().scenarioWorkload()
	if dc.Mode != scenario.ModeByBytes || dc.On.Mean != 20e6 {
		t.Errorf("datacenter scenarioWorkload = %v", dc)
	}
}

func TestEvaluatorScoresPacedAboveDefault(t *testing.T) {
	// On a 10 Mbps link with 2 senders, the default (unpaced, always-grow)
	// rule floods the buffer; a 2 ms-paced rule shares the link cleanly.
	// The evaluator must prefer the paced table.
	cfg := tinyConfig()
	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 2
	specs := cfg.SampleSet(cfg.Specimens, sim.NewRNG(3))

	defaultTree := core.DefaultWhiskerTree()
	pacedTree := core.NewWhiskerTree(core.Action{WindowMultiple: 1, WindowIncrement: 1, IntersendMs: 3})

	scores, err := eval.ScoreMany([]*core.WhiskerTree{defaultTree, pacedTree}, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatal("score count")
	}
	if !(scores[1] > scores[0]) {
		t.Errorf("paced tree score %.3f should beat default tree score %.3f", scores[1], scores[0])
	}
}

func TestEvaluatorUsageAndMedian(t *testing.T) {
	cfg := tinyConfig()
	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 2
	specs := cfg.SampleSet(cfg.Specimens, sim.NewRNG(4))
	tree := core.DefaultWhiskerTree()

	evaluation, err := eval.Evaluate(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if evaluation.FlowsScored == 0 {
		t.Fatal("no flows scored")
	}
	if len(evaluation.UseCounts) != 1 {
		t.Fatal("use counts size")
	}
	if evaluation.UseCounts[0] == 0 {
		t.Error("the only rule was never used")
	}
	if evaluation.MostUsedAny() != 0 {
		t.Error("MostUsedAny")
	}
	if evaluation.MostUsed(tree, 0) != 0 {
		t.Error("MostUsed at epoch 0")
	}
	if evaluation.MostUsed(tree, 7) != -1 {
		t.Error("MostUsed at a wrong epoch should be -1")
	}
	median, ok := evaluation.MedianMemory(0)
	if !ok {
		t.Fatal("no memory samples recorded")
	}
	if median.RTTRatio < 1 || median.RTTRatio > core.MaxMemoryValue {
		t.Errorf("median rtt_ratio = %v", median.RTTRatio)
	}
	if _, ok := evaluation.MedianMemory(5); ok {
		t.Error("MedianMemory out of range should report false")
	}
	if _, ok := evaluation.MedianMemory(-1); ok {
		t.Error("MedianMemory(-1) should report false")
	}
	if math.IsInf(evaluation.Score, 0) || math.IsNaN(evaluation.Score) {
		t.Errorf("score = %v", evaluation.Score)
	}
}

func TestEvaluatorDeterministicScores(t *testing.T) {
	cfg := tinyConfig()
	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 3
	specs := cfg.SampleSet(cfg.Specimens, sim.NewRNG(5))
	tree := core.NewWhiskerTree(core.Action{WindowMultiple: 1, WindowIncrement: 2, IntersendMs: 1})
	a, err := eval.Evaluate(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eval.Evaluate(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.FlowsScored != b.FlowsScored {
		t.Errorf("evaluation not deterministic: %.6f vs %.6f", a.Score, b.Score)
	}
}

func TestEvaluatorErrors(t *testing.T) {
	eval := NewEvaluator(stats.DefaultObjective(1))
	tree := core.DefaultWhiskerTree()
	if _, err := eval.Evaluate(tree, nil, tinyConfig()); err == nil {
		t.Error("empty specimen set accepted")
	}
	if _, err := eval.ScoreMany([]*core.WhiskerTree{tree}, nil, tinyConfig()); err == nil {
		t.Error("empty specimen set accepted by ScoreMany")
	}
	if out, err := eval.ScoreMany(nil, nil, tinyConfig()); err != nil || out != nil {
		t.Error("empty tree list should be a no-op")
	}
}

func TestUsageCollectorBounds(t *testing.T) {
	u := newUsageCollector(2, true)
	u.RecordUse(-1, core.Memory{})
	u.RecordUse(5, core.Memory{})
	if u.counts[0] != 0 && u.counts[1] != 0 {
		t.Error("out-of-range indices must be ignored")
	}
	for i := 0; i < maxMemorySamplesPerWhisker+10; i++ {
		u.RecordUse(0, core.Memory{AckEWMA: float64(i)})
	}
	if len(u.samples[0]) != maxMemorySamplesPerWhisker {
		t.Errorf("sample cap not enforced: %d", len(u.samples[0]))
	}
	if u.counts[0] != int64(maxMemorySamplesPerWhisker+10) {
		t.Error("counts must keep accumulating past the sample cap")
	}
}

func TestOptimizeImprovesScoreAndGrowsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization is too slow for -short")
	}
	cfg := tinyConfig()
	r := New(cfg, stats.DefaultObjective(1))
	r.Workers = 4
	r.Seed = 7
	r.ImprovementIters = 2
	r.CandidateRungs = 1
	r.EpochsPerSplit = 1 // split every round so the table visibly grows

	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 4
	specs := cfg.SampleSet(4, sim.NewRNG(99))
	before, err := eval.Evaluate(core.DefaultWhiskerTree(), specs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	tree, progress, err := r.Optimize(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 2 {
		t.Fatalf("progress entries: %d", len(progress))
	}
	for _, p := range progress {
		if p.String() == "" {
			t.Error("Progress.String")
		}
	}
	if tree.NumWhiskers() < 2 {
		t.Errorf("table did not grow: %d rules", tree.NumWhiskers())
	}

	after, err := eval.Evaluate(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(after.Score > before.Score) {
		t.Errorf("optimization did not improve the objective: before %.4f, after %.4f", before.Score, after.Score)
	}
}

func TestOptimizeValidation(t *testing.T) {
	r := New(tinyConfig(), stats.DefaultObjective(1))
	if _, _, err := r.Optimize(nil, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	bad := New(ConfigRange{}, stats.DefaultObjective(1))
	if _, _, err := bad.Optimize(nil, 1); err == nil {
		t.Error("invalid config accepted")
	}
}
