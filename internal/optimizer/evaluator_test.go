package optimizer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// multiRuleTree grows a small usage-driven table for evaluator tests.
func multiRuleTree(t *testing.T, cfg ConfigRange, specimens []Specimen, splits int) *core.WhiskerTree {
	t.Helper()
	tree := core.DefaultWhiskerTree()
	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 2
	for i := 0; i < splits; i++ {
		evaluation, err := eval.Evaluate(tree, specimens, cfg)
		if err != nil {
			t.Fatal(err)
		}
		idx := evaluation.MostUsedAny()
		if idx < 0 {
			t.Fatal("no whisker used")
		}
		median, ok := evaluation.MedianMemory(idx)
		if !ok {
			w, _ := tree.Whisker(idx)
			median = w.Domain.Midpoint()
		}
		if err := tree.Split(idx, median); err != nil {
			t.Fatal(err)
		}
	}
	return tree
}

// TestScoreCandidatesMatchesUncached is the exactness guard for usage
// pruning and memoization at the API level: for every whisker of a
// multi-rule table, ScoreCandidates (cache + pruning) must return exactly
// the scores the uncached full-batch path computes.
func TestScoreCandidatesMatchesUncached(t *testing.T) {
	cfg := tinyConfig()
	specs := cfg.SampleSet(4, sim.NewRNG(21))
	tree := multiRuleTree(t, cfg, specs, 1)

	fast := NewEvaluator(stats.DefaultObjective(1))
	fast.Workers = 3
	slow := NewEvaluator(stats.DefaultObjective(1))
	slow.Workers = 3
	slow.NoCache = true

	incumbent, err := fast.EvaluateUsage(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < tree.NumWhiskers(); idx++ {
		w, _ := tree.Whisker(idx)
		candidates := w.Action.Neighbors(1)
		trees := make([]*core.WhiskerTree, len(candidates))
		for i, cand := range candidates {
			tr, err := tree.WithAction(idx, cand)
			if err != nil {
				t.Fatal(err)
			}
			trees[i] = tr
		}
		got, err := fast.ScoreCandidates(incumbent, trees, idx, specs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := slow.ScoreMany(trees, specs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("whisker %d candidate %d: pruned score %v != uncached score %v", idx, i, got[i], want[i])
			}
		}
	}
	if st := fast.Stats(); st.SimulatedRuns == 0 {
		t.Error("no simulations recorded")
	}
}

// TestEvaluateUsageMatchesEvaluate checks the sample-free evaluation agrees
// with the full one on everything except the samples it skips.
func TestEvaluateUsageMatchesEvaluate(t *testing.T) {
	cfg := tinyConfig()
	specs := cfg.SampleSet(cfg.Specimens, sim.NewRNG(22))
	tree := core.DefaultWhiskerTree()

	full := NewEvaluator(stats.DefaultObjective(1))
	full.Workers = 2
	a, err := full.Evaluate(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	usage := NewEvaluator(stats.DefaultObjective(1))
	usage.Workers = 2
	b, err := usage.EvaluateUsage(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.FlowsScored != b.FlowsScored {
		t.Errorf("scores differ: %v vs %v", a.Score, b.Score)
	}
	for i := range a.UseCounts {
		if a.UseCounts[i] != b.UseCounts[i] {
			t.Errorf("use counts differ at %d", i)
		}
	}
	if len(a.MemorySamples[0]) == 0 {
		t.Error("Evaluate must collect samples")
	}
	if len(b.MemorySamples[0]) != 0 {
		t.Error("EvaluateUsage must not collect samples")
	}
}

// TestEvaluatorCacheStats checks the memo cache serves repeated evaluations
// and counts its work honestly.
func TestEvaluatorCacheStats(t *testing.T) {
	cfg := tinyConfig()
	specs := cfg.SampleSet(cfg.Specimens, sim.NewRNG(23))
	tree := core.DefaultWhiskerTree()
	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 2

	a, err := eval.EvaluateUsage(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := eval.Stats()
	if st.SimulatedRuns != int64(len(specs)) || st.CacheHits != 0 {
		t.Fatalf("after first evaluation: %+v", st)
	}
	b, err := eval.EvaluateUsage(tree, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st = eval.Stats()
	if st.SimulatedRuns != int64(len(specs)) || st.CacheHits != int64(len(specs)) {
		t.Fatalf("after second evaluation: %+v", st)
	}
	if a.Score != b.Score {
		t.Error("cached evaluation changed the score")
	}
	if st.String() == "" || st.CacheHitRate() <= 0 {
		t.Error("stats accessors")
	}
	// An epoch-only change must still hit the cache (epochs are invisible
	// to the simulation).
	tree.SetAllEpochs(3)
	if _, err := eval.EvaluateUsage(tree, specs, cfg); err != nil {
		t.Fatal(err)
	}
	if st = eval.Stats(); st.SimulatedRuns != int64(len(specs)) {
		t.Fatalf("epoch change caused re-simulation: %+v", st)
	}
	// NoCache disables all of it.
	off := NewEvaluator(stats.DefaultObjective(1))
	off.Workers = 2
	off.NoCache = true
	off.EvaluateUsage(tree, specs, cfg)
	off.EvaluateUsage(tree, specs, cfg)
	if st = off.Stats(); st.CacheHits != 0 || st.SimulatedRuns != 2*int64(len(specs)) {
		t.Fatalf("NoCache stats: %+v", st)
	}
}

// TestAggregateSampleCap pins the fix for the cap bypass: a bulk merge of
// per-specimen samples must truncate to the remaining budget instead of
// overshooting by up to a whole batch.
func TestAggregateSampleCap(t *testing.T) {
	eval := NewEvaluator(stats.DefaultObjective(1))
	big := make([]core.Memory, maxMemorySamplesPerWhisker-1)
	per := []*specimenResult{
		{sum: 1, flows: 1, counts: []int64{int64(len(big))}, consulted: []bool{true}, samples: [][]core.Memory{big}},
		{sum: 1, flows: 1, counts: []int64{int64(len(big))}, consulted: []bool{true}, samples: [][]core.Memory{big}},
		{sum: 1, flows: 1, counts: []int64{int64(len(big))}, consulted: []bool{true}, samples: [][]core.Memory{big}},
	}
	got := eval.aggregate(1, per)
	if len(got.MemorySamples[0]) != maxMemorySamplesPerWhisker {
		t.Fatalf("merged samples = %d, want exactly %d", len(got.MemorySamples[0]), maxMemorySamplesPerWhisker)
	}
	if got.UseCounts[0] != 3*int64(len(big)) {
		t.Error("use counts must keep accumulating past the sample cap")
	}
}

// TestEvaluationEdgeCases covers MostUsed/MostUsedAny/MedianMemory on empty
// and all-zero usage data.
func TestEvaluationEdgeCases(t *testing.T) {
	tree := core.DefaultWhiskerTree()
	empty := Evaluation{UseCounts: []int64{0}, MemorySamples: [][]core.Memory{nil}}
	if empty.MostUsed(tree, 0) != -1 {
		t.Error("MostUsed with all-zero counts must be -1")
	}
	if empty.MostUsedAny() != -1 {
		t.Error("MostUsedAny with all-zero counts must be -1")
	}
	if _, ok := empty.MedianMemory(0); ok {
		t.Error("MedianMemory with no samples must report false")
	}
	var zero Evaluation
	if zero.MostUsedAny() != -1 || zero.MostUsed(tree, 0) != -1 {
		t.Error("zero-value evaluation edge cases")
	}
	if _, ok := zero.MedianMemory(0); ok {
		t.Error("zero-value MedianMemory")
	}
}

// TestUsageCollectorTouches checks touches mark consultation without
// counting as uses, and that the sample-free collector stays sample-free.
func TestUsageCollectorTouches(t *testing.T) {
	u := newUsageCollector(2, false)
	u.RecordTouch(1)
	u.RecordTouch(-1)
	u.RecordTouch(5)
	if !u.consulted[1] || u.consulted[0] {
		t.Error("RecordTouch consultation tracking")
	}
	if u.counts[1] != 0 {
		t.Error("a touch must not count as a use")
	}
	u.RecordUse(0, core.Memory{})
	if u.counts[0] != 1 || !u.consulted[0] {
		t.Error("RecordUse must count and consult")
	}
	if u.samples != nil {
		t.Error("sample-free collector grew samples")
	}
}
