package optimizer

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// TrainingState is the resumable state of a design run beyond the tree
// itself. cmd/remy's -checkpoint flag saves it next to the tree after every
// round so a long training survives interruption.
type TrainingState struct {
	// Round is the number of completed rounds — the next round to run.
	Round int `json:"round"`
	// Epoch is the rule-table epoch counter after those rounds.
	Epoch int `json:"epoch"`
	// Seed is the design seed the run started with; resuming under a
	// different seed would silently change the specimen sequence, so
	// LoadCheckpoint callers are expected to verify it.
	Seed int64 `json:"seed"`
	// ConfigHash fingerprints the design configuration and search knobs
	// (Remy.ConfigFingerprint); resuming under a different model must be
	// refused for the same reason as a different seed.
	ConfigHash string `json:"config_hash,omitempty"`
	// TreeSHA256 is the hash of the tree file this state belongs to.
	// Checkpoint writes are atomic per file but span two files; the hash
	// turns a crash landing between them into a load error instead of a
	// silent divergence from the uninterrupted run.
	TreeSHA256 string `json:"tree_sha256"`
}

// ConfigFingerprint hashes everything that shapes the search trajectory —
// the design range, the objective, and the search knobs — so a checkpoint
// can refuse to resume under a different model.
func (r *Remy) ConfigFingerprint() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v|%+v|rungs=%d iters=%d split=%d max=%d",
		r.Config, r.Objective, r.CandidateRungs, r.ImprovementIters, r.EpochsPerSplit, r.MaxRules)))
	return hex.EncodeToString(sum[:8])
}

// statePath is where the training state lives relative to the tree file.
func statePath(treePath string) string { return treePath + ".state" }

// writeFileAtomic writes data via a temp file + rename so an interrupted
// write can never leave a truncated file behind.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveCheckpoint writes the tree (in its normal SaveFile JSON format, so
// the checkpoint doubles as a usable RemyCC) plus the training state. Both
// files are written atomically, and the state records the tree hash, so a
// crash at any point leaves either the previous complete checkpoint or the
// new one — never a torn or mismatched pair that loads successfully.
func SaveCheckpoint(treePath string, tree *core.WhiskerTree, st TrainingState) error {
	data, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		return fmt.Errorf("optimizer: encoding checkpoint tree: %w", err)
	}
	if err := writeFileAtomic(treePath, data); err != nil {
		return fmt.Errorf("optimizer: saving checkpoint tree: %w", err)
	}
	sum := sha256.Sum256(data)
	st.TreeSHA256 = hex.EncodeToString(sum[:])
	stData, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(statePath(treePath), append(stData, '\n')); err != nil {
		return fmt.Errorf("optimizer: saving checkpoint state: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint previously written by SaveCheckpoint.
func LoadCheckpoint(treePath string) (*core.WhiskerTree, TrainingState, error) {
	data, err := os.ReadFile(treePath)
	if err != nil {
		return nil, TrainingState{}, fmt.Errorf("optimizer: loading checkpoint tree: %w", err)
	}
	tree := &core.WhiskerTree{}
	if err := json.Unmarshal(data, tree); err != nil {
		return nil, TrainingState{}, fmt.Errorf("optimizer: parsing %s: %w", treePath, err)
	}
	stData, err := os.ReadFile(statePath(treePath))
	if err != nil {
		return nil, TrainingState{}, fmt.Errorf("optimizer: loading checkpoint state: %w", err)
	}
	var st TrainingState
	if err := json.Unmarshal(stData, &st); err != nil {
		return nil, TrainingState{}, fmt.Errorf("optimizer: parsing %s: %w", statePath(treePath), err)
	}
	if st.Round < 0 || st.Epoch < 0 {
		return nil, TrainingState{}, fmt.Errorf("optimizer: corrupt checkpoint state %+v", st)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); st.TreeSHA256 != "" && st.TreeSHA256 != got {
		return nil, TrainingState{}, fmt.Errorf(
			"optimizer: checkpoint desynchronized: %s does not match the tree recorded in %s (interrupted save?)",
			treePath, statePath(treePath))
	}
	return tree, st, nil
}
