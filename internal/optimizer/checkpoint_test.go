package optimizer

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	tree := core.DefaultWhiskerTree()
	tree.Split(0, core.Memory{AckEWMA: 10, SendEWMA: 10, RTTRatio: 2})
	st := TrainingState{Round: 3, Epoch: 5, Seed: 42}
	if err := SaveCheckpoint(path, tree, st); err != nil {
		t.Fatal(err)
	}
	// The tree file is a plain RemyCC, loadable on its own.
	if loaded, err := core.LoadFile(path); err != nil || loaded.NumWhiskers() != tree.NumWhiskers() {
		t.Fatalf("checkpoint tree not independently loadable: %v", err)
	}
	back, bst, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if bst.Round != st.Round || bst.Epoch != st.Epoch || bst.Seed != st.Seed {
		t.Errorf("state round trip: %+v != %+v", bst, st)
	}
	if bst.TreeSHA256 == "" {
		t.Error("saved state must record the tree hash")
	}
	if back.CanonicalKey() != tree.CanonicalKey() {
		t.Error("tree round trip changed behaviour")
	}

	// A tree/state pair from two different saves (crash between the writes)
	// must be refused, not silently resumed.
	other := core.DefaultWhiskerTree()
	if err := other.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path); err == nil {
		t.Error("desynchronized checkpoint accepted")
	}
	if err := SaveCheckpoint(path, tree, st); err != nil {
		t.Fatal(err)
	}

	if _, _, err := LoadCheckpoint(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing checkpoint accepted")
	}
	// A tree without its state file is an error, not a silent fresh start.
	bare := filepath.Join(dir, "bare.json")
	if err := tree.SaveFile(bare); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(bare); err == nil {
		t.Error("checkpoint without state file accepted")
	}
	// Corrupt state is rejected.
	os.WriteFile(statePath(bare), []byte(`{"round": -1}`), 0o644)
	if _, _, err := LoadCheckpoint(bare); err == nil {
		t.Error("corrupt state accepted")
	}
	os.WriteFile(statePath(bare), []byte(`not json`), 0o644)
	if _, _, err := LoadCheckpoint(bare); err == nil {
		t.Error("unparseable state accepted")
	}
}

// TestOptimizeResumeEquivalence is the determinism guard behind -resume:
// running N rounds one at a time through StartRound/StartEpoch (what
// cmd/remy's checkpoint loop does) must produce the byte-identical tree of
// a single uninterrupted Optimize call.
func TestOptimizeResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs are too slow for -short")
	}
	const rounds = 3

	oneShot := goldenRemyLike(t, 3)
	wantTree, wantProg, err := oneShot.Optimize(nil, rounds)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(wantTree)

	var tree *core.WhiskerTree
	epoch := 0
	var gotProg []Progress
	for round := 0; round < rounds; round++ {
		r := goldenRemyLike(t, 3)
		r.StartRound, r.StartEpoch = round, epoch
		next, prog, err := r.Optimize(tree, 1)
		if err != nil {
			t.Fatal(err)
		}
		tree, epoch = next, r.Epoch()
		gotProg = append(gotProg, prog...)
	}
	got, _ := json.Marshal(tree)
	if !bytes.Equal(got, want) {
		t.Fatal("round-at-a-time training differs from the uninterrupted run")
	}
	if len(gotProg) != len(wantProg) {
		t.Fatalf("progress length %d != %d", len(gotProg), len(wantProg))
	}
	for i := range wantProg {
		if gotProg[i].Round != wantProg[i].Round || gotProg[i].Epoch != wantProg[i].Epoch ||
			gotProg[i].Rules != wantProg[i].Rules || gotProg[i].Score != wantProg[i].Score {
			t.Errorf("progress[%d]: %+v != %+v", i, gotProg[i], wantProg[i])
		}
	}
}

// goldenRemyLike builds a fresh small designer per call (the resume test
// needs independent instances with identical knobs).
func goldenRemyLike(t *testing.T, workers int) *Remy {
	t.Helper()
	cfg := tinyConfig()
	r := New(cfg, stats.DefaultObjective(1))
	r.Seed = 77
	r.Workers = workers
	r.CandidateRungs = 1
	r.ImprovementIters = 1
	r.EpochsPerSplit = 2
	r.MaxRules = 16
	return r
}
