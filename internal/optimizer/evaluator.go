package optimizer

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/stats"
)

// maxMemorySamplesPerWhisker caps how many memory points are retained per
// rule for the median-split step, bounding memory use during long searches.
const maxMemorySamplesPerWhisker = 4096

// Evaluation is the outcome of simulating one candidate RemyCC on a set of
// specimen networks.
type Evaluation struct {
	// Score is the mean per-flow objective value over all specimens (higher
	// is better) — the "overall figure of merit" of §4.3.
	Score float64
	// UseCounts[i] is the number of times rule i was looked up.
	UseCounts []int64
	// MemorySamples[i] holds (a capped subset of) the memory points that
	// triggered rule i, used to find the median split point.
	MemorySamples [][]core.Memory
	// FlowsScored is the number of (specimen, flow) pairs that contributed.
	FlowsScored int
}

// MostUsed returns the index of the most-used rule among those whose epoch
// (per the supplied tree) equals epoch, or -1 if no such rule was used.
func (e Evaluation) MostUsed(tree *core.WhiskerTree, epoch int) int {
	best := -1
	var bestCount int64
	for i, w := range tree.Whiskers() {
		if w.Epoch != epoch || i >= len(e.UseCounts) {
			continue
		}
		if e.UseCounts[i] > bestCount {
			bestCount = e.UseCounts[i]
			best = i
		}
	}
	return best
}

// MostUsedAny returns the index of the most-used rule regardless of epoch,
// or -1 if no rule was used at all.
func (e Evaluation) MostUsedAny() int {
	best := -1
	var bestCount int64
	for i, c := range e.UseCounts {
		if c > bestCount {
			bestCount = c
			best = i
		}
	}
	return best
}

// MedianMemory returns the per-axis median of the memory samples recorded
// for rule idx, or false if there are none.
func (e Evaluation) MedianMemory(idx int) (core.Memory, bool) {
	if idx < 0 || idx >= len(e.MemorySamples) || len(e.MemorySamples[idx]) == 0 {
		return core.Memory{}, false
	}
	samples := e.MemorySamples[idx]
	axis := func(i int) float64 {
		vals := make([]float64, len(samples))
		for j, m := range samples {
			vals[j] = m.Axis(i)
		}
		sort.Float64s(vals)
		return vals[len(vals)/2]
	}
	return core.Memory{AckEWMA: axis(0), SendEWMA: axis(1), RTTRatio: axis(2)}, true
}

// usageCollector implements core.UsageRecorder for one specimen simulation.
type usageCollector struct {
	counts  []int64
	samples [][]core.Memory
}

func newUsageCollector(n int) *usageCollector {
	return &usageCollector{counts: make([]int64, n), samples: make([][]core.Memory, n)}
}

// RecordUse implements core.UsageRecorder.
func (u *usageCollector) RecordUse(idx int, m core.Memory) {
	if idx < 0 || idx >= len(u.counts) {
		return
	}
	u.counts[idx]++
	if len(u.samples[idx]) < maxMemorySamplesPerWhisker {
		u.samples[idx] = append(u.samples[idx], m)
	}
}

// Evaluator scores candidate rule tables on specimen networks.
type Evaluator struct {
	// Objective is the per-flow utility function (Equation 1).
	Objective stats.Objective
	// Workers bounds the number of concurrent specimen simulations; zero
	// means one fewer than the number of CPUs.
	Workers int
}

// NewEvaluator returns an evaluator for the given objective.
func NewEvaluator(obj stats.Objective) *Evaluator {
	return &Evaluator{Objective: obj, Workers: defaultWorkers()}
}

// scenarioFor builds the harness scenario simulating the tree on one
// specimen. Every sender runs the same candidate RemyCC (the superrational
// setting of §4); when rec is non-nil it observes every rule lookup.
func scenarioFor(tree *core.WhiskerTree, spec Specimen, cfg ConfigRange, rec core.UsageRecorder) harness.Scenario {
	flows := make([]harness.FlowSpec, spec.Senders)
	for i := range flows {
		flows[i] = harness.FlowSpec{
			RTTMs:    spec.RTTMs,
			Workload: cfg.workloadSpec(),
			NewAlgorithm: func() cc.Algorithm {
				s := core.NewSender(tree)
				s.Recorder = rec
				return s
			},
		}
	}
	return harness.Scenario{
		LinkRateBps:   spec.LinkRateBps,
		Queue:         harness.QueueDropTail,
		QueueCapacity: cfg.QueueCapacityPackets,
		Duration:      cfg.SpecimenDuration,
		Flows:         flows,
	}
}

// specimenScore runs one specimen and returns the summed per-flow utilities
// and the number of flows that contributed.
func (e *Evaluator) specimenScore(tree *core.WhiskerTree, spec Specimen, cfg ConfigRange, rec core.UsageRecorder) (float64, int, error) {
	res, err := harness.Run(scenarioFor(tree, spec, cfg, rec), spec.Seed)
	if err != nil {
		return 0, 0, err
	}
	fairShare := spec.LinkRateBps / float64(spec.Senders)
	var sum float64
	flows := 0
	for _, f := range res.Flows {
		if f.Metrics.OnDuration <= 0 {
			continue
		}
		flows++
		sum += e.flowUtility(f.Metrics, fairShare)
	}
	return sum, flows, nil
}

// flowUtility evaluates Equation 1 for one flow, normalizing throughput by
// the fair share of the bottleneck and delay by the flow's minimum RTT so
// scores are comparable across specimens with different scales.
func (e *Evaluator) flowUtility(m stats.FlowMetrics, fairShareBps float64) float64 {
	const epsilon = 1e-6
	tput := m.ThroughputBps / fairShareBps
	if tput < epsilon {
		tput = epsilon
	}
	delay := 1.0
	if m.MinRTT > 0 {
		delay = m.AvgRTT / m.MinRTT
		if delay < 1 {
			delay = 1
		}
	}
	u := e.Objective.Score(tput, delay)
	if math.IsInf(u, -1) || math.IsNaN(u) {
		u = -1e9
	}
	return u
}

// Evaluate simulates the tree on every specimen (in parallel) and returns
// the aggregate score together with per-rule usage statistics.
func (e *Evaluator) Evaluate(tree *core.WhiskerTree, specimens []Specimen, cfg ConfigRange) (Evaluation, error) {
	if len(specimens) == 0 {
		return Evaluation{}, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	n := tree.NumWhiskers()
	eval := Evaluation{
		UseCounts:     make([]int64, n),
		MemorySamples: make([][]core.Memory, n),
	}
	type result struct {
		sum   float64
		flows int
		usage *usageCollector
		err   error
	}
	results := make([]result, len(specimens))
	workers := e.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, spec := range specimens {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, spec Specimen) {
			defer wg.Done()
			defer func() { <-sem }()
			usage := newUsageCollector(n)
			sum, flows, err := e.specimenScore(tree, spec, cfg, usage)
			results[i] = result{sum: sum, flows: flows, usage: usage, err: err}
		}(i, spec)
	}
	wg.Wait()

	var total float64
	for _, r := range results {
		if r.err != nil {
			return Evaluation{}, r.err
		}
		total += r.sum
		eval.FlowsScored += r.flows
		for idx, c := range r.usage.counts {
			eval.UseCounts[idx] += c
			if len(eval.MemorySamples[idx]) < maxMemorySamplesPerWhisker {
				eval.MemorySamples[idx] = append(eval.MemorySamples[idx], r.usage.samples[idx]...)
			}
		}
	}
	if eval.FlowsScored > 0 {
		eval.Score = total / float64(eval.FlowsScored)
	} else {
		eval.Score = math.Inf(-1)
	}
	return eval, nil
}

// ScoreMany evaluates several candidate trees on the same specimen set (the
// same networks and seeds, as the paper prescribes for comparing candidate
// actions) and returns one score per tree. All (tree, specimen) simulations
// share the worker pool.
func (e *Evaluator) ScoreMany(trees []*core.WhiskerTree, specimens []Specimen, cfg ConfigRange) ([]float64, error) {
	if len(trees) == 0 {
		return nil, nil
	}
	if len(specimens) == 0 {
		return nil, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	sums := make([]float64, len(trees))
	flows := make([]int, len(trees))
	errs := make([]error, len(trees)*len(specimens))

	workers := e.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for ti, tree := range trees {
		for si, spec := range specimens {
			wg.Add(1)
			sem <- struct{}{}
			go func(ti, si int, tree *core.WhiskerTree, spec Specimen) {
				defer wg.Done()
				defer func() { <-sem }()
				sum, nf, err := e.specimenScore(tree, spec, cfg, nil)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					errs[ti*len(specimens)+si] = err
					return
				}
				sums[ti] += sum
				flows[ti] += nf
			}(ti, si, tree, spec)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(trees))
	for i := range trees {
		if flows[i] > 0 {
			out[i] = sums[i] / float64(flows[i])
		} else {
			out[i] = math.Inf(-1)
		}
	}
	return out, nil
}
