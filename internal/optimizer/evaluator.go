package optimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// maxMemorySamplesPerWhisker caps how many memory points are retained per
// rule for the median-split step, bounding memory use during long searches.
const maxMemorySamplesPerWhisker = 4096

// Evaluation is the outcome of simulating one candidate RemyCC on a set of
// specimen networks.
type Evaluation struct {
	// Score is the mean per-flow objective value over all specimens (higher
	// is better) — the "overall figure of merit" of §4.3.
	Score float64
	// UseCounts[i] is the number of times rule i was looked up.
	UseCounts []int64
	// MemorySamples[i] holds (a capped subset of) the memory points that
	// triggered rule i, used to find the median split point.
	MemorySamples [][]core.Memory
	// FlowsScored is the number of (specimen, flow) pairs that contributed.
	FlowsScored int
}

// MostUsed returns the index of the most-used rule among those whose epoch
// (per the supplied tree) equals epoch, or -1 if no such rule was used.
func (e Evaluation) MostUsed(tree *core.WhiskerTree, epoch int) int {
	best := -1
	var bestCount int64
	for i, w := range tree.Whiskers() {
		if w.Epoch != epoch || i >= len(e.UseCounts) {
			continue
		}
		if e.UseCounts[i] > bestCount {
			bestCount = e.UseCounts[i]
			best = i
		}
	}
	return best
}

// MostUsedAny returns the index of the most-used rule regardless of epoch,
// or -1 if no rule was used at all.
func (e Evaluation) MostUsedAny() int {
	best := -1
	var bestCount int64
	for i, c := range e.UseCounts {
		if c > bestCount {
			bestCount = c
			best = i
		}
	}
	return best
}

// MedianMemory returns the per-axis median of the memory samples recorded
// for rule idx, or false if there are none.
func (e Evaluation) MedianMemory(idx int) (core.Memory, bool) {
	if idx < 0 || idx >= len(e.MemorySamples) || len(e.MemorySamples[idx]) == 0 {
		return core.Memory{}, false
	}
	samples := e.MemorySamples[idx]
	axis := func(i int) float64 {
		vals := make([]float64, len(samples))
		for j, m := range samples {
			vals[j] = m.Axis(i)
		}
		sort.Float64s(vals)
		return vals[len(vals)/2]
	}
	return core.Memory{AckEWMA: axis(0), SendEWMA: axis(1), RTTRatio: axis(2)}, true
}

// usageCollector implements core.UsageRecorder for one specimen simulation.
type usageCollector struct {
	counts  []int64
	samples [][]core.Memory
}

func newUsageCollector(n int) *usageCollector {
	return &usageCollector{counts: make([]int64, n), samples: make([][]core.Memory, n)}
}

// RecordUse implements core.UsageRecorder.
func (u *usageCollector) RecordUse(idx int, m core.Memory) {
	if idx < 0 || idx >= len(u.counts) {
		return
	}
	u.counts[idx]++
	if len(u.samples[idx]) < maxMemorySamplesPerWhisker {
		u.samples[idx] = append(u.samples[idx], m)
	}
}

// Evaluator scores candidate rule tables on specimen networks.
type Evaluator struct {
	// Objective is the per-flow utility function (Equation 1).
	Objective stats.Objective
	// Workers bounds the number of concurrent specimen simulations; zero
	// means one fewer than the number of CPUs.
	Workers int
}

// NewEvaluator returns an evaluator for the given objective.
func NewEvaluator(obj stats.Objective) *Evaluator {
	return &Evaluator{Objective: obj, Workers: defaultWorkers()}
}

// specFor builds the declarative scenario simulating the tree on one
// specimen. Every sender runs the same candidate RemyCC (the superrational
// setting of §4), injected programmatically so that, when rec is non-nil, it
// observes every rule lookup.
func specFor(tree *core.WhiskerTree, spec Specimen, cfg ConfigRange, rec core.UsageRecorder) scenario.Spec {
	return scenario.New(
		scenario.WithName(spec.String()),
		scenario.WithLink(spec.LinkRateBps),
		scenario.WithQueue(scenario.QueueDropTail, cfg.QueueCapacityPackets),
		scenario.WithDuration(cfg.SpecimenDuration.Seconds()),
		scenario.WithSeed(spec.Seed),
		scenario.WithFlow(scenario.FlowSpec{
			Scheme:   "remy-candidate",
			Count:    spec.Senders,
			RTTMs:    spec.RTTMs,
			Workload: cfg.scenarioWorkload(),
			Algorithm: func() cc.Algorithm {
				s := core.NewSender(tree)
				s.Recorder = rec
				return s
			},
		}),
	)
}

// runner returns the scenario runner specimen evaluations execute through.
func (e *Evaluator) runner() scenario.Runner {
	workers := e.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	return scenario.Runner{Workers: workers}
}

// scoreResult converts one specimen run into the summed per-flow utilities
// and the number of flows that contributed.
func (e *Evaluator) scoreResult(res scenario.Result, spec Specimen) (float64, int) {
	fairShare := spec.LinkRateBps / float64(spec.Senders)
	var sum float64
	flows := 0
	for _, f := range res.Res.Flows {
		if f.Metrics.OnDuration <= 0 {
			continue
		}
		flows++
		sum += e.flowUtility(f.Metrics, fairShare)
	}
	return sum, flows
}

// flowUtility evaluates Equation 1 for one flow, normalizing throughput by
// the fair share of the bottleneck and delay by the flow's minimum RTT so
// scores are comparable across specimens with different scales.
func (e *Evaluator) flowUtility(m stats.FlowMetrics, fairShareBps float64) float64 {
	const epsilon = 1e-6
	tput := m.ThroughputBps / fairShareBps
	if tput < epsilon {
		tput = epsilon
	}
	delay := 1.0
	if m.MinRTT > 0 {
		delay = m.AvgRTT / m.MinRTT
		if delay < 1 {
			delay = 1
		}
	}
	u := e.Objective.Score(tput, delay)
	if math.IsInf(u, -1) || math.IsNaN(u) {
		u = -1e9
	}
	return u
}

// Evaluate simulates the tree on every specimen (in parallel) and returns
// the aggregate score together with per-rule usage statistics.
func (e *Evaluator) Evaluate(tree *core.WhiskerTree, specimens []Specimen, cfg ConfigRange) (Evaluation, error) {
	if len(specimens) == 0 {
		return Evaluation{}, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	n := tree.NumWhiskers()
	eval := Evaluation{
		UseCounts:     make([]int64, n),
		MemorySamples: make([][]core.Memory, n),
	}
	// One spec per specimen, each with its own usage collector; the scenario
	// runner spreads them over the worker pool and returns results in
	// specimen order.
	specs := make([]scenario.Spec, len(specimens))
	usages := make([]*usageCollector, len(specimens))
	for i, spec := range specimens {
		usages[i] = newUsageCollector(n)
		specs[i] = specFor(tree, spec, cfg, usages[i])
	}
	results, err := e.runner().RunAll(specs)
	if err != nil {
		return Evaluation{}, err
	}

	var total float64
	for i, r := range results {
		sum, flows := e.scoreResult(r, specimens[i])
		total += sum
		eval.FlowsScored += flows
		usage := usages[i]
		for idx, c := range usage.counts {
			eval.UseCounts[idx] += c
			if len(eval.MemorySamples[idx]) < maxMemorySamplesPerWhisker {
				eval.MemorySamples[idx] = append(eval.MemorySamples[idx], usage.samples[idx]...)
			}
		}
	}
	if eval.FlowsScored > 0 {
		eval.Score = total / float64(eval.FlowsScored)
	} else {
		eval.Score = math.Inf(-1)
	}
	return eval, nil
}

// ScoreMany evaluates several candidate trees on the same specimen set (the
// same networks and seeds, as the paper prescribes for comparing candidate
// actions) and returns one score per tree. All (tree, specimen) simulations
// share the worker pool.
func (e *Evaluator) ScoreMany(trees []*core.WhiskerTree, specimens []Specimen, cfg ConfigRange) ([]float64, error) {
	if len(trees) == 0 {
		return nil, nil
	}
	if len(specimens) == 0 {
		return nil, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	// All (tree, specimen) pairs become one batch of specs sharing the
	// runner's worker pool, exactly as the paper prescribes for comparing
	// candidate actions on identical networks and seeds.
	specs := make([]scenario.Spec, 0, len(trees)*len(specimens))
	for _, tree := range trees {
		for _, spec := range specimens {
			specs = append(specs, specFor(tree, spec, cfg, nil))
		}
	}
	results, err := e.runner().RunAll(specs)
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(trees))
	flows := make([]int, len(trees))
	for i, r := range results {
		ti, si := i/len(specimens), i%len(specimens)
		sum, nf := e.scoreResult(r, specimens[si])
		sums[ti] += sum
		flows[ti] += nf
	}
	out := make([]float64, len(trees))
	for i := range trees {
		if flows[i] > 0 {
			out[i] = sums[i] / float64(flows[i])
		} else {
			out[i] = math.Inf(-1)
		}
	}
	return out, nil
}
