package optimizer

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// maxMemorySamplesPerWhisker caps how many memory points are retained per
// rule for the median-split step, bounding memory use during long searches.
const maxMemorySamplesPerWhisker = 4096

// DefaultMaxCacheEntries bounds the evaluation memo cache. Entries are
// per-(tree, specimen) usage summaries; when the bound is exceeded the cache
// is cleared, which affects only speed, never results.
const DefaultMaxCacheEntries = 1 << 16

// specimenResult is the outcome of simulating one rule table on one
// specimen network: the summed per-flow utilities, the number of flows that
// contributed, and per-rule usage. Results are immutable once created, so
// one result may be shared between cache entries — that sharing is how
// usage-pruned candidate scoring transfers an incumbent's result to a
// candidate that provably behaves identically on the specimen.
type specimenResult struct {
	sum   float64
	flows int
	// counts[i] is how many times rule i was used on an ACK.
	counts []int64
	// consulted[i] reports whether rule i was looked up at all, including
	// the connection-(re)start lookups that do not count as uses. A rule
	// with consulted[i] == false cannot have influenced the simulation.
	consulted []bool
	// samples[i] holds the memory points that triggered rule i; nil unless
	// the evaluation was asked to collect them (Evaluate does, the cheaper
	// usage-only paths do not).
	samples [][]core.Memory
}

// evalKey identifies one deterministic simulation: the behaviour-relevant
// encoding of the rule table, the specimen network (including its seed),
// and the design configuration it runs under.
type evalKey struct {
	tree string
	spec Specimen
	cfg  ConfigRange
}

// EvalStats counts the work an Evaluator performed and the work it avoided.
type EvalStats struct {
	// SimulatedRuns is the number of (tree, specimen) simulations executed.
	SimulatedRuns int64
	// CacheHits is the number of (tree, specimen) evaluations served from
	// the memo cache.
	CacheHits int64
	// PrunedRuns is the number of candidate (tree, specimen) simulations
	// skipped because the incumbent never consulted the modified whisker on
	// that specimen (the incumbent's result was transferred instead).
	PrunedRuns int64
}

// Add returns the component-wise sum of two counter sets (for aggregating
// stats across several Optimize calls, e.g. a checkpointed round loop).
func (s EvalStats) Add(o EvalStats) EvalStats {
	return EvalStats{
		SimulatedRuns: s.SimulatedRuns + o.SimulatedRuns,
		CacheHits:     s.CacheHits + o.CacheHits,
		PrunedRuns:    s.PrunedRuns + o.PrunedRuns,
	}
}

// Sub returns the component-wise difference s − o (for deriving one round's
// counters from two cumulative snapshots).
func (s EvalStats) Sub(o EvalStats) EvalStats {
	return EvalStats{
		SimulatedRuns: s.SimulatedRuns - o.SimulatedRuns,
		CacheHits:     s.CacheHits - o.CacheHits,
		PrunedRuns:    s.PrunedRuns - o.PrunedRuns,
	}
}

// CacheHitRate returns the fraction of evaluations served from the cache.
func (s EvalStats) CacheHitRate() float64 {
	total := s.SimulatedRuns + s.CacheHits + s.PrunedRuns
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// PruneRate returns the fraction of evaluations avoided by usage pruning.
func (s EvalStats) PruneRate() float64 {
	total := s.SimulatedRuns + s.CacheHits + s.PrunedRuns
	if total == 0 {
		return 0
	}
	return float64(s.PrunedRuns) / float64(total)
}

func (s EvalStats) String() string {
	return fmt.Sprintf("simulated=%d cache_hits=%d pruned=%d (hit_rate=%.1f%% prune_rate=%.1f%%)",
		s.SimulatedRuns, s.CacheHits, s.PrunedRuns, 100*s.CacheHitRate(), 100*s.PruneRate())
}

// Evaluation is the outcome of simulating one candidate RemyCC on a set of
// specimen networks.
type Evaluation struct {
	// Score is the mean per-flow objective value over all specimens (higher
	// is better) — the "overall figure of merit" of §4.3.
	Score float64
	// UseCounts[i] is the number of times rule i was looked up.
	UseCounts []int64
	// MemorySamples[i] holds (a capped subset of) the memory points that
	// triggered rule i, used to find the median split point. Only Evaluate
	// collects samples; usage-only evaluations leave this empty.
	MemorySamples [][]core.Memory
	// FlowsScored is the number of (specimen, flow) pairs that contributed.
	FlowsScored int

	// perSpec holds the per-specimen results (in specimen order) backing
	// this evaluation; ScoreCandidates uses them to decide which specimens a
	// modified whisker can actually affect.
	perSpec []*specimenResult
}

// MostUsed returns the index of the most-used rule among those whose epoch
// (per the supplied tree) equals epoch, or -1 if no such rule was used.
func (e Evaluation) MostUsed(tree *core.WhiskerTree, epoch int) int {
	best := -1
	var bestCount int64
	for i, w := range tree.Whiskers() {
		if w.Epoch != epoch || i >= len(e.UseCounts) {
			continue
		}
		if e.UseCounts[i] > bestCount {
			bestCount = e.UseCounts[i]
			best = i
		}
	}
	return best
}

// MostUsedAny returns the index of the most-used rule regardless of epoch,
// or -1 if no rule was used at all.
func (e Evaluation) MostUsedAny() int {
	best := -1
	var bestCount int64
	for i, c := range e.UseCounts {
		if c > bestCount {
			bestCount = c
			best = i
		}
	}
	return best
}

// MedianMemory returns the per-axis median of the memory samples recorded
// for rule idx, or false if there are none.
func (e Evaluation) MedianMemory(idx int) (core.Memory, bool) {
	if idx < 0 || idx >= len(e.MemorySamples) || len(e.MemorySamples[idx]) == 0 {
		return core.Memory{}, false
	}
	samples := e.MemorySamples[idx]
	axis := func(i int) float64 {
		vals := make([]float64, len(samples))
		for j, m := range samples {
			vals[j] = m.Axis(i)
		}
		sort.Float64s(vals)
		return vals[len(vals)/2]
	}
	return core.Memory{AckEWMA: axis(0), SendEWMA: axis(1), RTTRatio: axis(2)}, true
}

// usageCollector implements core.UsageRecorder (and core.TouchRecorder) for
// one specimen simulation.
type usageCollector struct {
	counts    []int64
	consulted []bool
	samples   [][]core.Memory // nil when sample collection is disabled
}

func newUsageCollector(n int, collectSamples bool) *usageCollector {
	u := &usageCollector{counts: make([]int64, n), consulted: make([]bool, n)}
	if collectSamples {
		u.samples = make([][]core.Memory, n)
	}
	return u
}

// RecordUse implements core.UsageRecorder.
func (u *usageCollector) RecordUse(idx int, m core.Memory) {
	if idx < 0 || idx >= len(u.counts) {
		return
	}
	u.counts[idx]++
	u.consulted[idx] = true
	if u.samples != nil && len(u.samples[idx]) < maxMemorySamplesPerWhisker {
		u.samples[idx] = append(u.samples[idx], m)
	}
}

// RecordTouch implements core.TouchRecorder: connection-start lookups mark
// the rule as consulted without counting as a use.
func (u *usageCollector) RecordTouch(idx int) {
	if idx < 0 || idx >= len(u.consulted) {
		return
	}
	u.consulted[idx] = true
}

// Evaluator scores candidate rule tables on specimen networks. Every
// (tree, specimen) simulation is deterministic, which the evaluator exploits
// twice: results are memoized by the tree's behaviour-relevant canonical
// key, and candidate trees that differ from an incumbent only in a rule a
// specimen never consulted reuse the incumbent's result for that specimen
// outright. Both shortcuts are exact — they return bit-identical data to a
// fresh simulation.
type Evaluator struct {
	// Objective is the per-flow utility function (Equation 1).
	Objective stats.Objective
	// Workers bounds the number of concurrent specimen simulations; zero
	// means one fewer than the number of CPUs.
	Workers int
	// NoCache disables the evaluation memo cache (and with it usage
	// pruning, which transfers results through the cache). Every call then
	// re-simulates from scratch — the pre-optimization behaviour, kept for
	// benchmarking and equivalence tests.
	NoCache bool
	// NoPrune disables only the usage-pruned candidate scoring.
	NoPrune bool
	// MaxCacheEntries bounds the memo cache; <= 0 means
	// DefaultMaxCacheEntries. Exceeding the bound clears the cache.
	MaxCacheEntries int
	// Backend, when non-nil, executes pending simulation batches instead of
	// the in-process runner pool — the seam the distributed evaluation plane
	// (internal/distrib) plugs into. A Backend must be exact: its results
	// must be bit-identical to RunBatchLocal's for every job. The memo cache
	// and usage pruning stay on this side of the seam, so only genuine
	// simulations cross it.
	Backend BatchRunner

	mu    sync.Mutex
	cache map[evalKey]*specimenResult
	// seeded marks cache keys filled by usage-pruning transfer rather than
	// simulation; the first lookup of such a key is counted as a pruned run
	// instead of a cache hit.
	seeded map[evalKey]bool
	stats  EvalStats
}

// NewEvaluator returns an evaluator for the given objective.
func NewEvaluator(obj stats.Objective) *Evaluator {
	return &Evaluator{Objective: obj, Workers: defaultWorkers()}
}

// Stats returns the evaluator's cumulative work counters.
func (e *Evaluator) Stats() EvalStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func (e *Evaluator) cacheGet(k evalKey, needSamples bool) *specimenResult {
	if e.NoCache {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.cache[k]
	if r == nil || (needSamples && r.samples == nil) {
		return nil
	}
	if e.seeded[k] {
		delete(e.seeded, k)
		e.stats.PrunedRuns++
	} else {
		e.stats.CacheHits++
	}
	return r
}

func (e *Evaluator) cachePut(k evalKey, r *specimenResult) {
	if e.NoCache {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ensureRoomLocked()
	e.cache[k] = r
}

// cacheSeed transfers an incumbent's per-specimen result to a candidate key
// whose simulation is provably identical. Keys that already hold a result
// (e.g. a candidate re-proposed from an earlier iteration) are left alone —
// those were avoided by memoization, not pruning.
func (e *Evaluator) cacheSeed(k evalKey, r *specimenResult) {
	if e.NoCache {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[k]; ok {
		return
	}
	e.ensureRoomLocked()
	e.cache[k] = r
	e.seeded[k] = true
}

func (e *Evaluator) ensureRoomLocked() {
	limit := e.MaxCacheEntries
	if limit <= 0 {
		limit = DefaultMaxCacheEntries
	}
	if e.cache == nil || len(e.cache) >= limit {
		e.cache = make(map[evalKey]*specimenResult)
		e.seeded = make(map[evalKey]bool)
	}
}

// specFor builds the declarative scenario simulating the tree on one
// specimen. Every sender runs the same candidate RemyCC (the superrational
// setting of §4), injected programmatically so that, when rec is non-nil, it
// observes every rule lookup.
func specFor(tree *core.WhiskerTree, spec Specimen, cfg ConfigRange, rec core.UsageRecorder) scenario.Spec {
	return scenario.New(
		scenario.WithName(spec.String()),
		scenario.WithLink(spec.LinkRateBps),
		scenario.WithQueue(scenario.QueueDropTail, cfg.QueueCapacityPackets),
		scenario.WithDuration(cfg.SpecimenDuration.Seconds()),
		scenario.WithSeed(spec.Seed),
		scenario.WithoutSummaries(),
		scenario.WithFlow(scenario.FlowSpec{
			Scheme:   "remy-candidate",
			Count:    spec.Senders,
			RTTMs:    spec.RTTMs,
			Workload: cfg.scenarioWorkload(),
			Algorithm: func() cc.Algorithm {
				s := core.NewSender(tree)
				s.Recorder = rec
				return s
			},
		}),
	)
}

// flowUtility evaluates Equation 1 for one flow, normalizing throughput by
// the fair share of the bottleneck and delay by the flow's minimum RTT so
// scores are comparable across specimens with different scales.
func flowUtility(objective stats.Objective, m stats.FlowMetrics, fairShareBps float64) float64 {
	const epsilon = 1e-6
	tput := m.ThroughputBps / fairShareBps
	if tput < epsilon {
		tput = epsilon
	}
	delay := 1.0
	if m.MinRTT > 0 {
		delay = m.AvgRTT / m.MinRTT
		if delay < 1 {
			delay = 1
		}
	}
	u := objective.Score(tput, delay)
	if math.IsInf(u, -1) || math.IsNaN(u) {
		u = -1e9
	}
	return u
}

// runBatch resolves a batch of pending simulations through the configured
// backend, or in-process when none is set.
func (e *Evaluator) runBatch(jobs []BatchJob) ([]BatchResult, error) {
	if e.Backend != nil {
		return e.Backend.RunBatch(e.Objective, jobs)
	}
	return RunBatchLocal(e.Objective, e.Workers, jobs)
}

// evaluateTrees resolves the per-specimen result of every (tree, specimen)
// pair, serving what it can from the memo cache and simulating the rest as
// one batch over the worker pool. out[t][s] is the result for trees[t] on
// specimens[s]. Results are deterministic per (tree, specimen, cfg), so the
// cache only changes speed, never values.
func (e *Evaluator) evaluateTrees(trees []*core.WhiskerTree, specimens []Specimen, cfg ConfigRange, withSamples bool) ([][]*specimenResult, error) {
	out := make([][]*specimenResult, len(trees))
	keys := make([]string, len(trees))
	for ti, tree := range trees {
		out[ti] = make([]*specimenResult, len(specimens))
		keys[ti] = tree.CanonicalKey()
	}

	type ref struct{ ti, si int }
	var (
		jobs     []BatchJob
		pendKeys []evalKey
		pendRefs [][]ref
	)
	pendingByKey := make(map[evalKey]int)
	for ti, tree := range trees {
		for si, sp := range specimens {
			k := evalKey{tree: keys[ti], spec: sp, cfg: cfg}
			if r := e.cacheGet(k, withSamples); r != nil {
				out[ti][si] = r
				continue
			}
			if pi, ok := pendingByKey[k]; ok {
				pendRefs[pi] = append(pendRefs[pi], ref{ti, si})
				continue
			}
			pendingByKey[k] = len(jobs)
			jobs = append(jobs, BatchJob{Tree: tree, Specimen: sp, Config: cfg, WithSamples: withSamples, Affinity: si})
			pendKeys = append(pendKeys, k)
			pendRefs = append(pendRefs, []ref{{ti, si}})
		}
	}

	if len(jobs) > 0 {
		results, err := e.runBatch(jobs)
		if err != nil {
			return nil, err
		}
		if len(results) != len(jobs) {
			return nil, fmt.Errorf("optimizer: batch backend returned %d results for %d jobs", len(results), len(jobs))
		}
		for pi, br := range results {
			res := &specimenResult{sum: br.Sum, flows: br.Flows, counts: br.Counts, consulted: br.Consulted, samples: br.Samples}
			e.cachePut(pendKeys[pi], res)
			for _, rf := range pendRefs[pi] {
				out[rf.ti][rf.si] = res
			}
		}
		e.mu.Lock()
		e.stats.SimulatedRuns += int64(len(jobs))
		e.mu.Unlock()
	}
	return out, nil
}

// aggregate folds per-specimen results (in specimen order) into one
// Evaluation for a tree with n rules.
func (e *Evaluator) aggregate(n int, perSpec []*specimenResult) Evaluation {
	eval := Evaluation{
		UseCounts:     make([]int64, n),
		MemorySamples: make([][]core.Memory, n),
		perSpec:       perSpec,
	}
	var total float64
	for _, r := range perSpec {
		total += r.sum
		eval.FlowsScored += r.flows
		for idx, c := range r.counts {
			eval.UseCounts[idx] += c
			if r.samples == nil {
				continue
			}
			// Truncate to the remaining budget so a bulk merge can never
			// overshoot the per-whisker sample cap.
			if remaining := maxMemorySamplesPerWhisker - len(eval.MemorySamples[idx]); remaining > 0 {
				s := r.samples[idx]
				if len(s) > remaining {
					s = s[:remaining]
				}
				eval.MemorySamples[idx] = append(eval.MemorySamples[idx], s...)
			}
		}
	}
	if eval.FlowsScored > 0 {
		eval.Score = total / float64(eval.FlowsScored)
	} else {
		eval.Score = math.Inf(-1)
	}
	return eval
}

// Evaluate simulates the tree on every specimen (in parallel) and returns
// the aggregate score together with per-rule usage statistics, including
// the memory samples the split step needs.
func (e *Evaluator) Evaluate(tree *core.WhiskerTree, specimens []Specimen, cfg ConfigRange) (Evaluation, error) {
	return e.evaluate(tree, specimens, cfg, true)
}

// EvaluateUsage is Evaluate without memory-sample collection: scores and
// use counts only. This is the evaluation the improvement ladder runs on —
// sample collection is deferred to the (much rarer) split step.
func (e *Evaluator) EvaluateUsage(tree *core.WhiskerTree, specimens []Specimen, cfg ConfigRange) (Evaluation, error) {
	return e.evaluate(tree, specimens, cfg, false)
}

func (e *Evaluator) evaluate(tree *core.WhiskerTree, specimens []Specimen, cfg ConfigRange, withSamples bool) (Evaluation, error) {
	if len(specimens) == 0 {
		return Evaluation{}, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	per, err := e.evaluateTrees([]*core.WhiskerTree{tree}, specimens, cfg, withSamples)
	if err != nil {
		return Evaluation{}, err
	}
	return e.aggregate(tree.NumWhiskers(), per[0]), nil
}

// ScoreMany evaluates several candidate trees on the same specimen set (the
// same networks and seeds, as the paper prescribes for comparing candidate
// actions) and returns one score per tree. All (tree, specimen) simulations
// share the worker pool.
func (e *Evaluator) ScoreMany(trees []*core.WhiskerTree, specimens []Specimen, cfg ConfigRange) ([]float64, error) {
	if len(trees) == 0 {
		return nil, nil
	}
	if len(specimens) == 0 {
		return nil, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	per, err := e.evaluateTrees(trees, specimens, cfg, false)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(trees))
	for ti := range trees {
		var sum float64
		flows := 0
		for _, r := range per[ti] {
			sum += r.sum
			flows += r.flows
		}
		if flows > 0 {
			out[ti] = sum / float64(flows)
		} else {
			out[ti] = math.Inf(-1)
		}
	}
	return out, nil
}

// ScoreCandidates scores candidate trees that each differ from the
// incumbent evaluation's tree only in the action of whisker changed, on the
// same specimen set the incumbent was evaluated on. Specimens whose flows
// never consulted the changed whisker under the incumbent are not
// re-simulated: a rule that was never looked up cannot have influenced the
// specimen's trajectory, so the candidate's simulation there is identical
// to the incumbent's and the incumbent's per-specimen result is transferred
// outright. The remaining (affected) specimens are simulated as one batch.
func (e *Evaluator) ScoreCandidates(incumbent Evaluation, trees []*core.WhiskerTree, changed int, specimens []Specimen, cfg ConfigRange) ([]float64, error) {
	if len(trees) == 0 {
		return nil, nil
	}
	if len(specimens) == 0 {
		return nil, fmt.Errorf("optimizer: no specimens to evaluate")
	}
	if !e.NoPrune && !e.NoCache && len(incumbent.perSpec) == len(specimens) {
		for _, tree := range trees {
			ck := tree.CanonicalKey()
			for si, sp := range specimens {
				inc := incumbent.perSpec[si]
				if changed < 0 || changed >= len(inc.consulted) || inc.consulted[changed] {
					continue
				}
				e.cacheSeed(evalKey{tree: ck, spec: sp, cfg: cfg}, inc)
			}
		}
	}
	return e.ScoreMany(trees, specimens, cfg)
}
