// Package optimizer implements Remy itself: the offline design procedure of
// §4.3 that searches for the congestion-control rule table (a
// core.WhiskerTree) maximizing the expected objective over a stated network
// model. The protocol designer supplies prior assumptions about the network
// (a ConfigRange), a traffic model, and an objective function; Optimize
// returns a RemyCC.
//
// The search follows the paper's greedy structure: simulate the current
// RemyCC on a set of specimen networks drawn from the model, find the
// most-used rule of the current epoch, improve its action by evaluating a
// geometric ladder of candidate modifications on the same specimens and
// random seeds, and — every K epochs — subdivide the most-used rule at the
// median memory value that triggered it. Candidate evaluations are
// embarrassingly parallel and are spread over a worker pool of goroutines.
package optimizer

import (
	"fmt"
	"runtime"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Range is a closed interval of float64 values.
type Range struct {
	Lo, Hi float64
}

// Sample draws uniformly from the range.
func (r Range) Sample(rng *sim.RNG) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return rng.Uniform(r.Lo, r.Hi)
}

// Validate reports whether the range is usable.
func (r Range) Validate() error {
	if r.Lo <= 0 || r.Hi < r.Lo {
		return fmt.Errorf("optimizer: invalid range [%g, %g]", r.Lo, r.Hi)
	}
	return nil
}

func (r Range) String() string { return fmt.Sprintf("[%g, %g]", r.Lo, r.Hi) }

// ConfigRange is the protocol designer's prior knowledge about the networks
// the RemyCC will encounter (§3.1) together with the traffic model (§3.2)
// and the simulation budget used during design.
type ConfigRange struct {
	// MinSenders and MaxSenders bound the degree of multiplexing; each
	// specimen draws its sender count uniformly from this range.
	MinSenders, MaxSenders int
	// LinkRateBps is the bottleneck-rate design range in bits per second.
	LinkRateBps Range
	// RTTMs is the round-trip propagation delay design range in
	// milliseconds.
	RTTMs Range

	// Traffic model: senders alternate between exponentially distributed
	// "off" periods and "on" periods measured either in seconds (ByTime) or
	// bytes (ByBytes).
	OnMode        workload.OnMode
	MeanOnSeconds float64
	MeanOnBytes   float64
	MeanOffSecs   float64

	// QueueCapacityPackets is the bottleneck buffer used at design time; the
	// paper's design model uses an effectively unlimited queue.
	QueueCapacityPackets int

	// SpecimenDuration is the simulated duration of each specimen evaluation
	// (the paper uses 100 seconds).
	SpecimenDuration sim.Time
	// Specimens is the number of specimen networks drawn per evaluation
	// (the paper draws at least 16).
	Specimens int
}

// DumbbellDesignRange returns the general-purpose design model of §5.1:
// 1–16 senders, 10–20 Mbps links, 100–200 ms RTTs, exponential on/off with
// 5-second means, unlimited buffering, 100-second specimens.
func DumbbellDesignRange() ConfigRange {
	return ConfigRange{
		MinSenders:           1,
		MaxSenders:           16,
		LinkRateBps:          Range{10e6, 20e6},
		RTTMs:                Range{100, 200},
		OnMode:               workload.ByTime,
		MeanOnSeconds:        5,
		MeanOffSecs:          5,
		QueueCapacityPackets: 100000,
		SpecimenDuration:     100 * sim.Second,
		Specimens:            16,
	}
}

// LinkSpeedDesignRange returns the §5.7 design model used for the 1x and 10x
// prior-knowledge experiment: exactly two senders, 150 ms RTT, and a
// caller-supplied link-speed range.
func LinkSpeedDesignRange(lo, hi float64) ConfigRange {
	c := DumbbellDesignRange()
	c.MinSenders = 2
	c.MaxSenders = 2
	c.LinkRateBps = Range{lo, hi}
	c.RTTMs = Range{150, 150}
	return c
}

// DatacenterDesignRange returns the §5.5 design model: up to 64 senders on a
// 10 Gbps link with 4 ms RTT, 20 MB mean transfers with 100 ms mean off
// periods.
func DatacenterDesignRange() ConfigRange {
	return ConfigRange{
		MinSenders:           1,
		MaxSenders:           64,
		LinkRateBps:          Range{10e9, 10e9},
		RTTMs:                Range{4, 4},
		OnMode:               workload.ByBytes,
		MeanOnBytes:          20e6,
		MeanOffSecs:          0.1,
		QueueCapacityPackets: 100000,
		SpecimenDuration:     2 * sim.Second,
		Specimens:            8,
	}
}

// Validate reports configuration errors.
func (c ConfigRange) Validate() error {
	if c.MinSenders < 1 || c.MaxSenders < c.MinSenders {
		return fmt.Errorf("optimizer: invalid sender range [%d, %d]", c.MinSenders, c.MaxSenders)
	}
	if err := c.LinkRateBps.Validate(); err != nil {
		return fmt.Errorf("optimizer: link rate: %w", err)
	}
	if err := c.RTTMs.Validate(); err != nil {
		return fmt.Errorf("optimizer: rtt: %w", err)
	}
	switch c.OnMode {
	case workload.ByTime:
		if c.MeanOnSeconds <= 0 {
			return fmt.Errorf("optimizer: MeanOnSeconds must be positive for ByTime traffic")
		}
	case workload.ByBytes:
		if c.MeanOnBytes <= 0 {
			return fmt.Errorf("optimizer: MeanOnBytes must be positive for ByBytes traffic")
		}
	default:
		return fmt.Errorf("optimizer: unknown on mode %v", c.OnMode)
	}
	if c.MeanOffSecs <= 0 {
		return fmt.Errorf("optimizer: MeanOffSecs must be positive")
	}
	if c.SpecimenDuration <= 0 {
		return fmt.Errorf("optimizer: SpecimenDuration must be positive")
	}
	if c.Specimens < 1 {
		return fmt.Errorf("optimizer: need at least one specimen")
	}
	return nil
}

// scenarioWorkload converts the traffic model to its declarative form.
func (c ConfigRange) scenarioWorkload() scenario.WorkloadSpec {
	off := scenario.ExponentialDist(c.MeanOffSecs)
	if c.OnMode == workload.ByTime {
		return scenario.ByTimeWorkload(scenario.ExponentialDist(c.MeanOnSeconds), off)
	}
	return scenario.ByBytesWorkload(scenario.ExponentialDist(c.MeanOnBytes), off)
}

// Specimen is one network drawn from the design range: a concrete number of
// senders, link rate, RTT, and the random seed that drives its workload.
type Specimen struct {
	Senders     int
	LinkRateBps float64
	RTTMs       float64
	Seed        int64
}

func (s Specimen) String() string {
	return fmt.Sprintf("specimen{n=%d rate=%.1fMbps rtt=%.0fms seed=%d}",
		s.Senders, s.LinkRateBps/1e6, s.RTTMs, s.Seed)
}

// Sample draws one specimen from the design range.
func (c ConfigRange) Sample(rng *sim.RNG) Specimen {
	return Specimen{
		Senders:     rng.UniformInt(c.MinSenders, c.MaxSenders),
		LinkRateBps: c.LinkRateBps.Sample(rng),
		RTTMs:       c.RTTMs.Sample(rng),
		Seed:        rng.Int63(),
	}
}

// SampleSet draws n specimens from the design range.
func (c ConfigRange) SampleSet(n int, rng *sim.RNG) []Specimen {
	out := make([]Specimen, n)
	for i := range out {
		out[i] = c.Sample(rng)
	}
	return out
}

// defaultWorkers returns the worker-pool size used when the caller does not
// override it: all but one of the machine's CPUs, at least one.
func defaultWorkers() int {
	n := runtime.NumCPU() - 1
	if n < 1 {
		n = 1
	}
	return n
}
