package optimizer

import (
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// BatchJob is one pending (tree, specimen) simulation. Jobs are
// self-contained — tree, specimen (with its seed) and design configuration
// together determine the simulation bit for bit — so a job can execute on
// any worker, local or remote, and a re-dispatch after a crash reproduces
// the identical result.
type BatchJob struct {
	Tree        *core.WhiskerTree
	Specimen    Specimen
	Config      ConfigRange
	WithSamples bool
	// Affinity is a stable shard key: the specimen's index within the
	// evaluation's specimen set. Distributed backends route equal-affinity
	// jobs to the same worker, so a worker sees the same specimens batch
	// after batch and its warm per-process state (pooled engines, reusable
	// sessions) keeps paying off across an optimization round.
	Affinity int
}

// BatchResult is the outcome of one BatchJob: the summed per-flow utilities,
// the number of flows that contributed, and per-rule usage indexed by
// whisker index (an ordering the tree's JSON codec preserves, so results
// computed from a decoded tree line up with the coordinator's in-memory
// tree).
type BatchResult struct {
	Sum       float64
	Flows     int
	Counts    []int64
	Consulted []bool
	// Samples holds the memory points that triggered each rule; nil unless
	// the job asked for sample collection.
	Samples [][]core.Memory
}

// BatchRunner executes a batch of specimen simulations and returns one
// result per job, in job order. Implementations must be exact: the results
// for a job must be bit-identical to RunBatchLocal's, regardless of where
// or how often the job runs. internal/distrib's Coordinator is the
// multi-process implementation.
type BatchRunner interface {
	RunBatch(objective stats.Objective, jobs []BatchJob) ([]BatchResult, error)
}

// RunBatchLocal executes jobs on an in-process scenario runner pool. This is
// the single execution path for specimen simulations: the Evaluator calls it
// when no Backend is configured, and every distrib worker calls it on its
// shard — which is what makes a distributed run byte-identical to an
// in-process one by construction.
func RunBatchLocal(objective stats.Objective, workers int, jobs []BatchJob) ([]BatchResult, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	specs := make([]scenario.Spec, len(jobs))
	collectors := make([]*usageCollector, len(jobs))
	for i, j := range jobs {
		u := newUsageCollector(j.Tree.NumWhiskers(), j.WithSamples)
		collectors[i] = u
		specs[i] = specFor(j.Tree, j.Specimen, j.Config, u)
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	results, err := scenario.Runner{Workers: workers}.RunAll(specs)
	if err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(jobs))
	for i, r := range results {
		sum, flows := scoreSpecimen(objective, r, jobs[i].Specimen)
		u := collectors[i]
		out[i] = BatchResult{Sum: sum, Flows: flows, Counts: u.counts, Consulted: u.consulted, Samples: u.samples}
	}
	return out, nil
}

// scoreSpecimen converts one specimen run into the summed per-flow utilities
// and the number of flows that contributed.
func scoreSpecimen(objective stats.Objective, res scenario.Result, spec Specimen) (float64, int) {
	fairShare := spec.LinkRateBps / float64(spec.Senders)
	var sum float64
	flows := 0
	for _, f := range res.Res.Flows {
		if f.Metrics.OnDuration <= 0 {
			continue
		}
		flows++
		sum += flowUtility(objective, f.Metrics, fairShare)
	}
	return sum, flows
}
