package optimizer

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// -update regenerates the golden training fixture in testdata/. Only
// legitimate when an intentional behaviour change to the design procedure
// has been reviewed; the whole point of the fixture is that performance
// work on the evaluation pipeline must NOT change the trained tree.
var updateGolden = flag.Bool("update", false, "rewrite the golden training fixture in testdata/")

// goldenTrainConfig is a small but non-trivial design range: enough traffic
// for rules to be exercised, short enough that the two-round run finishes in
// seconds.
func goldenTrainConfig() ConfigRange {
	return ConfigRange{
		MinSenders:           1,
		MaxSenders:           2,
		LinkRateBps:          Range{Lo: 10e6, Hi: 10e6},
		RTTMs:                Range{Lo: 100, Hi: 150},
		OnMode:               workload.ByTime,
		MeanOnSeconds:        2,
		MeanOffSecs:          1,
		QueueCapacityPackets: 1000,
		SpecimenDuration:     2 * sim.Second,
		Specimens:            3,
	}
}

// goldenRemy returns the fixed-seed designer the fixture was recorded with.
func goldenRemy(workers int) *Remy {
	r := New(goldenTrainConfig(), stats.DefaultObjective(1))
	r.Seed = 42
	r.Workers = workers
	r.CandidateRungs = 1
	r.ImprovementIters = 1
	r.EpochsPerSplit = 1 // split every round so the fixture exercises MedianMemory
	r.MaxRules = 32
	return r
}

func goldenTrainRun(t *testing.T, workers int) []byte {
	t.Helper()
	tree, progress, err := goldenRemy(workers).Optimize(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 3 {
		t.Fatalf("progress entries: %d", len(progress))
	}
	data, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenTraining asserts that a fixed-seed training run reproduces the
// recorded rule table byte for byte, at any worker count. The fixture was
// recorded with the pre-rewrite (clone-per-candidate, no caching, no
// pruning) optimizer, so this test is the exactness guard for the memoized
// and usage-pruned evaluation pipeline.
func TestGoldenTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training run is too slow for -short")
	}
	path := filepath.Join("testdata", "golden_train.json")
	got := goldenTrainRun(t, 4)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		gotPath := filepath.Join("testdata", "got-golden_train.json")
		os.WriteFile(gotPath, got, 0o644)
		t.Fatalf("trained tree differs from the golden fixture (wrote %s for diffing)", gotPath)
	}
}

// TestGoldenTrainingWorkerInvariance asserts the trained tree does not
// depend on the worker-pool size.
func TestGoldenTrainingWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("training run is too slow for -short")
	}
	one := goldenTrainRun(t, 1)
	eight := goldenTrainRun(t, 8)
	if !bytes.Equal(one, eight) {
		t.Fatal("trained tree differs between Workers=1 and Workers=8")
	}
	// Both must also match the recorded fixture (the Workers=4 run above
	// checks against it; this pins 1 and 8 to the same bytes).
	want, err := os.ReadFile(filepath.Join("testdata", "golden_train.json"))
	if err == nil && !bytes.Equal(one, want) {
		t.Fatal("Workers=1 run differs from the golden fixture")
	}
}
