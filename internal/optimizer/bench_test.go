package optimizer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchConfig is the design range the optimizer benchmarks run on: small
// enough for quick iterations, busy enough that rules actually get used.
func benchConfig() ConfigRange {
	return ConfigRange{
		MinSenders:           1,
		MaxSenders:           4,
		LinkRateBps:          Range{Lo: 5e6, Hi: 30e6},
		RTTMs:                Range{Lo: 40, Hi: 300},
		OnMode:               workload.ByTime,
		MeanOnSeconds:        2,
		MeanOffSecs:          1,
		QueueCapacityPackets: 1000,
		SpecimenDuration:     1 * sim.Second,
		Specimens:            16,
	}
}

// benchTree grows a multi-rule table the way the design procedure does —
// repeatedly subdividing the most-used whisker at the median memory that
// triggered it — so the rules concentrate where the traffic actually lives
// and different specimens consult different (overlapping) rule subsets.
func benchTree(b *testing.B, cfg ConfigRange, specimens []Specimen, splits int) *core.WhiskerTree {
	b.Helper()
	tree := core.DefaultWhiskerTree()
	eval := NewEvaluator(stats.DefaultObjective(1))
	eval.Workers = 4
	for i := 0; i < splits; i++ {
		evaluation, err := eval.Evaluate(tree, specimens, cfg)
		if err != nil {
			b.Fatal(err)
		}
		idx := evaluation.MostUsedAny()
		if idx < 0 {
			b.Fatal("no whisker used while growing the bench tree")
		}
		median, ok := evaluation.MedianMemory(idx)
		if !ok {
			w, _ := tree.Whisker(idx)
			median = w.Domain.Midpoint()
		}
		if err := tree.Split(idx, median); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

// BenchmarkOptimizeRound runs one full round of the design procedure (pick
// loop + split step) on a multi-rule table. Fresh designer and evaluator
// state per iteration, so only intra-round memoization and pruning count —
// nothing is amortized across b.N. The "legacy" variant disables the memo
// cache and usage pruning — every candidate simulation runs. It still
// benefits from this PR's flat whisker table and carried-evaluation pick
// loop, so measured speedups are conservative relative to the true
// pre-rewrite optimizer.
func BenchmarkOptimizeRound(b *testing.B) {
	cfg := benchConfig()
	specimens := cfg.SampleSet(cfg.Specimens, sim.NewRNG(11))
	base := benchTree(b, cfg, specimens, 8)
	for _, mode := range []struct {
		name    string
		noCache bool
	}{
		{"memoized", false},
		{"legacy", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var last EvalStats
			for i := 0; i < b.N; i++ {
				r := New(cfg, stats.DefaultObjective(1))
				r.Workers = 4
				r.CandidateRungs = 1
				r.ImprovementIters = 2
				eval := NewEvaluator(r.Objective)
				eval.Workers = 4
				eval.NoCache = mode.noCache
				tree := base.Clone()
				if _, err := r.optimizeRound(tree, eval, specimens, 0); err != nil {
					b.Fatal(err)
				}
				last = eval.Stats()
			}
			b.ReportMetric(last.CacheHitRate()*100, "hit%")
			b.ReportMetric(last.PruneRate()*100, "prune%")
			b.ReportMetric(float64(last.SimulatedRuns), "sims")
		})
	}
}

// BenchmarkScoreMany scores the full candidate-action ladder of one whisker
// of a multi-rule table on a fixed specimen set — the unit of work the
// improvement step performs dozens of times per round. The "pruned" variant
// measures ScoreCandidates with a fresh evaluator per iteration (including
// the incumbent usage evaluation it prunes against); "legacy" measures the
// uncached full-batch path that simulates every (candidate, specimen) pair.
func BenchmarkScoreMany(b *testing.B) {
	cfg := benchConfig()
	specimens := cfg.SampleSet(cfg.Specimens, sim.NewRNG(11))
	tree := benchTree(b, cfg, specimens, 8)

	// Improve the whisker the incumbent actually uses most, as the design
	// procedure would.
	setup := NewEvaluator(stats.DefaultObjective(1))
	setup.Workers = 4
	evaluation, err := setup.Evaluate(tree, specimens, cfg)
	if err != nil {
		b.Fatal(err)
	}
	idx := evaluation.MostUsedAny()
	if idx < 0 {
		b.Fatal("no whisker used")
	}
	w, _ := tree.Whisker(idx)
	candidates := w.Action.Neighbors(1)

	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eval := NewEvaluator(stats.DefaultObjective(1))
			eval.Workers = 4
			incumbent, err := eval.EvaluateUsage(tree, specimens, cfg)
			if err != nil {
				b.Fatal(err)
			}
			trees := make([]*core.WhiskerTree, len(candidates))
			for ci, cand := range candidates {
				t, err := tree.WithAction(idx, cand)
				if err != nil {
					b.Fatal(err)
				}
				trees[ci] = t
			}
			scores, err := eval.ScoreCandidates(incumbent, trees, idx, specimens, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(scores) != len(candidates) {
				b.Fatal("score count")
			}
		}
	})

	b.Run("legacy", func(b *testing.B) {
		eval := NewEvaluator(stats.DefaultObjective(1))
		eval.Workers = 4
		eval.NoCache = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trees := make([]*core.WhiskerTree, len(candidates))
			for ci, cand := range candidates {
				t := tree.Clone()
				if err := t.SetAction(idx, cand); err != nil {
					b.Fatal(err)
				}
				trees[ci] = t
			}
			scores, err := eval.ScoreMany(trees, specimens, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(scores) != len(candidates) {
				b.Fatal("score count")
			}
		}
	})
}
