package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// GlobalRand forces all randomness through the seeded, splittable sim.RNG.
// It forbids, repo-wide:
//
//   - the global math/rand and math/rand/v2 package-level draw functions
//     (rand.Intn, rand.Float64, rand.Shuffle, ...): they share unseeded
//     process-global state, so results differ run to run — including in
//     tests;
//   - raw rand.New / rand.NewSource outside internal/sim/rng.go in non-test
//     code: every production stream must derive from sim.RNG so seed
//     derivation stays centralized and splittable. Tests may construct
//     seeded rand.New generators directly.
//
// Methods on an explicit *rand.Rand value are not flagged; the analyzer
// polices where generators come from, not how they are consumed.
var GlobalRand = &analysis.Analyzer{
	Name:     "globalrand",
	Doc:      "forbids global math/rand state and raw generator construction outside sim/rng.go",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runGlobalRand,
}

// randConstructors create generators or sources; allowed only in
// internal/sim/rng.go (and seeded use in _test.go files).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"NewZipf":    true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalRand(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := collectSuppressions(pass)
	simPkg := false
	for _, e := range pathElements(pass.Pkg.Path()) {
		if e == "sim" {
			simPkg = true
		}
	}
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
			return
		}
		if fn.Signature().Recv() != nil {
			return // method on an explicit generator value
		}
		file := pass.Fset.Position(sel.Pos()).Filename
		if simPkg && filepath.Base(file) == "rng.go" {
			return // the one sanctioned home of raw math/rand
		}
		test := strings.HasSuffix(file, "_test.go")
		if randConstructors[fn.Name()] {
			if test {
				return // seeded local generators are fine in tests
			}
			supp.report(pass, sel.Pos(), "globalrand",
				"rand."+fn.Name()+" constructs a raw generator; derive a stream from sim.RNG (NewRNG/Split) so seeding stays centralized (or //lint:ignore globalrand <reason>)")
			return
		}
		supp.report(pass, sel.Pos(), "globalrand",
			"rand."+fn.Name()+" uses process-global math/rand state and is nondeterministic; use a seeded sim.RNG stream (or //lint:ignore globalrand <reason>)")
	})
	return nil, nil
}
