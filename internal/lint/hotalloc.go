package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotAlloc polices functions annotated //repo:hotpath — the per-event and
// per-packet paths (engine scheduling, packet send/deliver, queue
// enqueue/dequeue, whisker lookup) that must stay allocation-free in steady
// state. TestChurnSteadyStateAllocs only measures one scenario; this
// analyzer catches the regression classes statically in every annotated
// function:
//
//   - closure literals (each capture allocates),
//   - fmt.* calls (interface boxing + formatting state),
//   - append to a slice with no make(..., cap) in scope (growth
//     reallocates under load).
//
// Annotate a function by putting //repo:hotpath anywhere in its doc
// comment. Cold paths inside a hot function (error construction, one-time
// setup) carry //lint:ignore hotalloc <reason>.
var HotAlloc = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flags allocation patterns in //repo:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotAlloc,
}

const hotPathDirective = "//repo:hotpath"

// isHotPath reports whether the function declaration carries the
// //repo:hotpath annotation in its doc comment.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotPathDirective) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := collectSuppressions(pass)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !isHotPath(fn) || isTestFile(pass, fn.Pos()) {
			return
		}
		checkHotFunc(pass, supp, fn)
	})
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, supp suppressions, fn *ast.FuncDecl) {
	capSlices := slicesWithCapacity(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			supp.report(pass, n.Pos(), "hotalloc",
				"closure literal in //repo:hotpath function allocates per call; hoist it to a method or package-level func (or //lint:ignore hotalloc <reason>)")
			return false // don't descend: the closure body is not the hot path
		case *ast.CallExpr:
			checkHotCall(pass, supp, capSlices, n)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, supp suppressions, capSlices map[*types.Var]bool, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok &&
			f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			supp.report(pass, call.Pos(), "hotalloc",
				"fmt."+f.Name()+" in //repo:hotpath function allocates (interface boxing, formatter state); move formatting off the hot path (or //lint:ignore hotalloc <reason>)")
		}
	case *ast.Ident:
		if fun.Name != "append" || len(call.Args) == 0 {
			return
		}
		if base, ok := call.Args[0].(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[base].(*types.Var); ok && capSlices[v] {
				return // appending into preallocated capacity
			}
		}
		supp.report(pass, call.Pos(), "hotalloc",
			"append in //repo:hotpath function may grow the backing array; preallocate with make(..., cap) in this function (or //lint:ignore hotalloc <reason>)")
	}
}

// slicesWithCapacity returns the local slice variables of fn that are
// created by a make call carrying an explicit capacity argument
// (make([]T, len, cap)) — appends into them are treated as
// capacity-bounded. A two-argument make([]T, n) is full (len == cap), so
// the first append would already reallocate; it does not qualify.
func slicesWithCapacity(pass *analysis.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) < 3 {
				continue
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "make" {
				continue
			}
			lhs, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[lhs].(*types.Var); ok {
				out[v] = true
			} else if v, ok := pass.TypesInfo.Uses[lhs].(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}
