package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// WallTime forbids reading or waiting on the wall clock inside simulation
// packages. Simulated time is sim.Time, advanced only by the event engine;
// a time.Now or time.Sleep in a simulation path makes results depend on
// host speed and scheduling, breaking byte-identical replay. The campaign
// package (wall-clock watchdogs around simulations) and cmd/ are outside
// the checked set.
var WallTime = &analysis.Analyzer{
	Name:     "walltime",
	Doc:      "forbids wall-clock time functions in simulation packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runWallTime,
}

// wallClockFuncs are the package-level time functions that observe or wait
// on the wall clock. Pure conversions and constants (time.Duration,
// time.Unix, time.Parse) are fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
}

func runWallTime(pass *analysis.Pass) (any, error) {
	if !inSimulationPackage(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := collectSuppressions(pass)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if isTestFile(pass, sel.Pos()) {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return
		}
		if fn.Signature().Recv() != nil || !wallClockFuncs[fn.Name()] {
			return
		}
		supp.report(pass, sel.Pos(), "walltime",
			"time."+fn.Name()+" reads the wall clock in a simulation package; use the event engine's sim.Time instead (or //lint:ignore walltime <reason>)")
	})
	return nil, nil
}
