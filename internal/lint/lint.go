// Package lint implements repolint, a suite of golang.org/x/tools/go/analysis
// analyzers that enforce this repository's determinism and hot-path
// invariants at build time:
//
//   - detmap: no range over a map in result-affecting packages unless the
//     loop is the collect-keys-then-sort idiom (the PR 2 bug class).
//   - walltime: no wall-clock (time.Now, time.Sleep, ...) in simulation
//     packages; simulated time must come from sim.Time only.
//   - globalrand: no global math/rand functions anywhere, and no raw
//     rand.New outside internal/sim/rng.go; randomness flows through the
//     seeded, splittable sim.RNG.
//   - hotalloc: in functions annotated //repo:hotpath, no closure literals,
//     no fmt.* calls, and no append to a slice without provable capacity.
//   - lintdirective: every //lint:ignore suppression names a known analyzer
//     and carries a reason.
//
// A finding is suppressed with a directive on the offending line or the
// line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; lintdirective rejects directives without one and
// is itself unsuppressable.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full repolint suite in reporting order.
var Analyzers = []*analysis.Analyzer{
	DetMap,
	WallTime,
	GlobalRand,
	HotAlloc,
	Directive,
}

// analyzerNames are the names a //lint:ignore directive may reference.
var analyzerNames = map[string]bool{
	"detmap":     true,
	"walltime":   true,
	"globalrand": true,
	"hotalloc":   true,
}

// resultAffecting lists the import-path elements of packages whose code can
// influence simulation results: iterating a map in any order, reading the
// wall clock, or drawing from an unseeded RNG there can change reported
// numbers across runs, worker counts, shards, or resumes.
var resultAffecting = map[string]bool{
	"sim":       true,
	"netsim":    true,
	"cc":        true,
	"aqm":       true,
	"harness":   true,
	"workload":  true,
	"scenario":  true,
	"campaign":  true,
	"distrib":   true,
	"optimizer": true,
	"exp":       true,
	"core":      true,
	"faults":    true,
	"stats":     true,
	"traces":    true,
	"golden":    true,
	"ring":      true,
}

// pathElements splits a package path into elements, canonicalizing the
// test-variant forms the go tool produces ("p [p.test]", "p_test").
func pathElements(pkgPath string) []string {
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	elems := strings.Split(pkgPath, "/")
	if n := len(elems); n > 0 {
		elems[n-1] = strings.TrimSuffix(elems[n-1], "_test")
	}
	return elems
}

// inResultAffectingPackage reports whether the pass's package is one of the
// result-affecting packages detmap polices.
func inResultAffectingPackage(pass *analysis.Pass) bool {
	for _, e := range pathElements(pass.Pkg.Path()) {
		if resultAffecting[e] {
			return true
		}
	}
	return false
}

// inSimulationPackage reports whether the pass's package is one where wall
// time must never leak into simulation logic. The campaign and distrib
// packages are allowlisted: their executors legitimately use wall-clock
// watchdogs and retry backoff around (not inside) simulations — the
// simulations themselves run through scenario/optimizer code, where
// walltime still applies.
func inSimulationPackage(pass *analysis.Pass) bool {
	for _, e := range pathElements(pass.Pkg.Path()) {
		if e == "campaign" || e == "distrib" {
			return false
		}
	}
	return inResultAffectingPackage(pass)
}

// isTestFile reports whether pos is inside a _test.go file. detmap,
// walltime and hotalloc skip test files: wall-clock deadlines and
// order-insensitive map iteration are legitimate in assertions, and test
// code does not ship results. globalrand still applies to tests (global
// math/rand state is shared across goroutines and seeds).
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Pos
	analyzers []string // comma-separated analyzer list, possibly empty
	reason    string
	malformed string // non-empty description if the directive is invalid
}

const ignorePrefix = "//lint:ignore"

// parseIgnore parses a single comment, returning nil if it is not a
// //lint:ignore directive at all.
func parseIgnore(c *ast.Comment) *ignoreDirective {
	if !strings.HasPrefix(c.Text, ignorePrefix) {
		return nil
	}
	rest := c.Text[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //lint:ignorexyz — some other directive
	}
	d := &ignoreDirective{pos: c.Pos()}
	// A nested // starts a trailing comment (fixtures put // want markers
	// there); it is not part of the analyzer list or reason.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		d.malformed = "missing analyzer name and reason"
		return d
	}
	d.analyzers = strings.Split(fields[0], ",")
	for _, a := range d.analyzers {
		if a == "" {
			d.malformed = "empty analyzer name"
			return d
		}
		if !analyzerNames[a] {
			d.malformed = "unknown analyzer " + quote(a)
			return d
		}
	}
	if len(fields) < 2 {
		d.malformed = "missing reason (format: //lint:ignore <analyzer> <reason>)"
		return d
	}
	d.reason = strings.Join(fields[1:], " ")
	return d
}

func quote(s string) string { return "\"" + s + "\"" }

// suppressions maps (file, line) to the set of analyzer names suppressed
// there. A directive covers its own line (trailing comment) and the line
// below it (standalone comment above the offending statement).
type suppressions map[suppressKey]bool

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// collectSuppressions scans every file in the pass for well-formed
// //lint:ignore directives. Malformed directives are reported by the
// lintdirective analyzer, not here.
func collectSuppressions(pass *analysis.Pass) suppressions {
	s := make(suppressions)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnore(c)
				if d == nil || d.malformed != "" {
					continue
				}
				p := pass.Fset.Position(d.pos)
				for _, a := range d.analyzers {
					s[suppressKey{p.Filename, p.Line, a}] = true
					s[suppressKey{p.Filename, p.Line + 1, a}] = true
				}
			}
		}
	}
	return s
}

// report emits a diagnostic unless a //lint:ignore directive for the
// analyzer covers its line.
func (s suppressions) report(pass *analysis.Pass, pos token.Pos, analyzer, msg string) {
	p := pass.Fset.Position(pos)
	if s[suppressKey{p.Filename, p.Line, analyzer}] {
		return
	}
	pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}
