// Package linttest is a miniature analysistest: it loads a fixture package
// from a testdata directory, type-checks it against the standard library
// (source importer, so no network or prebuilt export data is needed), runs
// an analyzer together with its Requires chain, and compares the reported
// diagnostics against // want "regexp" comments on the offending lines.
//
// golang.org/x/tools/go/analysis/analysistest itself depends on
// go/packages, which is not part of the toolchain-vendored subset this
// repository builds against; this package provides the same contract for
// the repolint suite's needs.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads every .go file under dir as one package whose import path is
// pkgpath, runs a (and its transitive Requires), and asserts that the
// diagnostics match the fixture's // want comments. A line with no want
// comment must produce no diagnostic; every want regexp must be matched by
// a diagnostic on its line.
//
// The fixture's package path matters: repolint analyzers scope themselves
// by import-path elements (e.g. detmap only fires in result-affecting
// packages), so fixtures opt in by naming their directory after a policed
// element ("sim", "netsim") or opt out with a neutral name ("cold").
func Run(t *testing.T, dir, pkgpath string, a *analysis.Analyzer) {
	t.Helper()
	diags, fset, files := runOnDir(t, dir, pkgpath, a)

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{filepath.Base(p.Filename), p.Line}
		got[k] = append(got[k], d.Message)
	}

	matched := make(map[key][]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants := parseWants(t, c.Text)
				if len(wants) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				k := key{filepath.Base(p.Filename), p.Line}
				for _, w := range wants {
					re, err := regexp.Compile(w)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, w, err)
					}
					found := false
					for i, msg := range got[k] {
						if re.MatchString(msg) {
							found = true
							for len(matched[k]) <= i {
								matched[k] = append(matched[k], false)
							}
							matched[k][i] = true
							break
						}
					}
					if !found {
						t.Errorf("%s:%d: no diagnostic matching want %q (got %v)", k.file, k.line, w, got[k])
					}
				}
			}
		}
	}
	// Every diagnostic must have been demanded by a want on its line.
	keys := make([]key, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for i, msg := range got[k] {
			if len(matched[k]) <= i || !matched[k][i] {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
			}
		}
	}
}

// wantRe extracts the quoted regexps of a want marker; both "..." (with
// backslash escapes) and `...` forms are accepted, as in analysistest.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants finds a want marker anywhere in the comment — either the
// whole comment is "// want ..." or it trails another comment's text, as
// in directive fixtures ("//lint:ignore detmap // want `...`").
func parseWants(t *testing.T, comment string) []string {
	t.Helper()
	text := strings.TrimPrefix(comment, "//")
	if i := strings.Index(text, "// want "); i >= 0 {
		text = text[i+len("// "):]
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil
	}
	var out []string
	for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
		s := m[2]
		if m[1] != "" || m[2] == "" {
			var err error
			s, err = unescape(m[1])
			if err != nil {
				t.Fatalf("bad want string %q: %v", m[1], err)
			}
		}
		out = append(out, s)
	}
	return out
}

func unescape(s string) (string, error) {
	// The only escapes fixtures need are \" and \\.
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			if i >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// runOnDir parses, type-checks and analyzes one fixture package.
func runOnDir(t *testing.T, dir, pkgpath string, a *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no .go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-check %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	var runOne func(a *analysis.Analyzer, record bool)
	runOne = func(a *analysis.Analyzer, record bool) {
		for _, dep := range a.Requires {
			if _, done := results[dep]; !done {
				runOne(dep, false)
			}
		}
		resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
		for _, dep := range a.Requires {
			resultOf[dep] = results[dep]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: conf.Sizes,
			ResultOf:   resultOf,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if record {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	runOne(a, true)
	return diags, fset, files
}
