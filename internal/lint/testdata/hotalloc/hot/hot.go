// Package hot is a hotalloc fixture: only functions annotated
// //repo:hotpath are policed.
package hot

import "fmt"

// deliver is the annotated hot function with one of each violation.
//
//repo:hotpath fixture hot path
func deliver(xs []int, sink func(func())) []int {
	sink(func() {})    // want `closure literal in //repo:hotpath function allocates`
	fmt.Println(xs)    // want `fmt\.Println in //repo:hotpath function allocates`
	xs = append(xs, 1) // want `append in //repo:hotpath function may grow the backing array`
	return xs
}

// preallocated appends strictly into make(..., cap) capacity: clean.
//
//repo:hotpath fixture hot path
func preallocated(n int) []int {
	out := make([]int, 0, 16)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// suppressedHot carries reasons for its cold inner paths.
//
//repo:hotpath fixture hot path
func suppressedHot(xs []int) []int {
	//lint:ignore hotalloc fixture demonstrates a sanctioned cold-path append
	xs = append(xs, 1)
	return xs
}

// cold is unannotated: hotalloc ignores it entirely.
func cold(sink func(func())) {
	sink(func() {})
	fmt.Println("cold path")
	var xs []int
	_ = append(xs, 1)
}
