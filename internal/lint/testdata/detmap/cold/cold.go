// Package cold is outside the result-affecting set, so detmap stays quiet
// even on a bare map range.
package cold

func unpoliced(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
