// Package sim is a detmap fixture: its import path ends in "sim", a
// result-affecting element, so range-over-map is policed here.
package sim

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map has nondeterministic iteration order`
		total += v
	}
	return total
}

func flaggedKeyOnly(m map[string]int, sink func(string)) {
	for k := range m { // want `range over map has nondeterministic iteration order`
		sink(k)
	}
}

func cleanCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cleanSliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

func suppressed(m map[string]int) int {
	n := 0
	//lint:ignore detmap counting entries; the sum is order-insensitive
	for range m {
		n++
	}
	return n
}
