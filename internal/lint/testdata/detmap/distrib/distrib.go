// Package distrib is a detmap fixture: walltime allowlists this path
// element, but it stays result-affecting — an unordered map iteration in
// the coordinator could reorder merged batch results.
package distrib

func flagged(m map[int][]int, sink func([]int)) {
	for _, idxs := range m { // want `range over map has nondeterministic iteration order`
		sink(idxs)
	}
}

func cleanSliceRange(groups [][]int, sink func([]int)) {
	for _, idxs := range groups {
		sink(idxs)
	}
}
