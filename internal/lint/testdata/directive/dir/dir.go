// Package dir exercises lintdirective: every //lint:ignore must name a
// known analyzer and carry a reason.
package dir

func missingReason(m map[string]int) int {
	n := 0
	//lint:ignore detmap // want `malformed //lint:ignore directive: missing reason`
	for range m {
		n++
	}
	return n
}

func wrongAnalyzer(m map[string]int) int {
	n := 0
	//lint:ignore detmapp counting entries // want `malformed //lint:ignore directive: unknown analyzer "detmapp"`
	for range m {
		n++
	}
	return n
}

func missingEverything() {
	//lint:ignore // want `malformed //lint:ignore directive: missing analyzer name and reason`
	_ = 0
}

func valid(m map[string]int) int {
	n := 0
	//lint:ignore detmap counting entries; the count is order-insensitive
	for range m {
		n++
	}
	return n
}

func multiAnalyzer(m map[string]int) int {
	n := 0
	//lint:ignore detmap,walltime shared fixture reason for two analyzers
	for range m {
		n++
	}
	return n
}
