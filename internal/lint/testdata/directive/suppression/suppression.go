// Package suppression proves the lifecycle of a //lint:ignore against a
// live analyzer (detmap, via a result-affecting package path): a valid
// directive silences the finding, a malformed one does not.
package suppression

func validDirectiveSuppresses(m map[string]int) int {
	n := 0
	//lint:ignore detmap counting entries; the count is order-insensitive
	for range m {
		n++
	}
	return n
}

func missingReasonDoesNotSuppress(m map[string]int) int {
	n := 0
	//lint:ignore detmap
	for range m { // want `range over map has nondeterministic iteration order`
		n++
	}
	return n
}

func wrongAnalyzerDoesNotSuppress(m map[string]int) int {
	n := 0
	//lint:ignore walltime reason aimed at the wrong analyzer
	for range m { // want `range over map has nondeterministic iteration order`
		n++
	}
	return n
}
