// Package netsim is a walltime fixture: a simulation package where wall
// clock reads are forbidden.
package netsim

import "time"

func flaggedNow() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock in a simulation package`
}

func flaggedSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock in a simulation package`
}

func flaggedTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock in a simulation package`
}

// cleanDuration uses time only for unit arithmetic, which is pure.
func cleanDuration(d time.Duration) float64 {
	return d.Seconds() + time.Millisecond.Seconds()
}

func suppressed() {
	//lint:ignore walltime fixture exercises a sanctioned watchdog-style sleep
	time.Sleep(time.Millisecond)
}
