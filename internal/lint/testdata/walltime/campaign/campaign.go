// Package campaign is allowlisted for walltime: its executor runs
// wall-clock watchdogs around simulations, never inside them.
package campaign

import "time"

func watchdog() *time.Timer {
	return time.NewTimer(time.Second)
}

func backoff() {
	time.Sleep(time.Millisecond)
}
