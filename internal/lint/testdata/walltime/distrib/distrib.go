// Package distrib is allowlisted for walltime: the coordinator runs
// wall-clock batch watchdogs and retry backoff around worker dispatches;
// the simulations themselves execute in optimizer/scenario code, where the
// analyzer still applies.
package distrib

import "time"

func batchWatchdog() *time.Timer {
	return time.NewTimer(5 * time.Minute)
}

func redispatchBackoff() {
	time.Sleep(100 * time.Millisecond)
}
