// Package app is a globalrand fixture: an ordinary package where neither
// the global math/rand functions nor raw generator construction is allowed.
package app

import "math/rand"

func flaggedGlobal() int {
	return rand.Intn(10) // want `rand\.Intn uses process-global math/rand state`
}

func flaggedGlobalFloat() float64 {
	return rand.Float64() // want `rand\.Float64 uses process-global math/rand state`
}

func flaggedConstructor() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `rand\.New constructs a raw generator` `rand\.NewSource constructs a raw generator`
}

// cleanMethod consumes an explicit generator; where it came from is the
// construction site's problem, not the call site's.
func cleanMethod(r *rand.Rand) int {
	return r.Intn(10)
}

func suppressed() int {
	//lint:ignore globalrand fixture demonstrates a sanctioned draw
	return rand.Intn(10)
}
