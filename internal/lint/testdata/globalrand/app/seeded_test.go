package app

import "math/rand"

// cleanSeededInTest: _test.go files may construct seeded local generators.
func cleanSeededInTest() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// But the process-global draw functions stay forbidden even in tests: they
// share unseeded state across goroutines.
func flaggedGlobalInTest() int {
	return rand.Intn(10) // want `rand\.Intn uses process-global math/rand state`
}
