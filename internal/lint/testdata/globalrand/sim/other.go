package sim

import "math/rand"

// Outside rng.go even the sim package itself may not construct raw
// generators.
func flaggedElsewhereInSim() *rand.Rand {
	return rand.New(rand.NewSource(7)) // want `rand\.New constructs a raw generator` `rand\.NewSource constructs a raw generator`
}
