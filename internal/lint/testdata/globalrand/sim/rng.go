// Package sim's rng.go is the one sanctioned home of raw math/rand: the
// seeded, splittable RNG wrapper is built here.
package sim

import "math/rand"

type RNG struct{ r *rand.Rand }

func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}
