package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetMap flags range statements over maps in result-affecting packages.
// Go's map iteration order is deliberately randomized, so any result that
// depends on it differs between runs — the exact bug class PR 2 found in
// retransmission ordering. The one allowed form is the collect-then-sort
// idiom, a loop body that only appends to a slice:
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// Anything else must sort keys first or carry
// //lint:ignore detmap <reason> explaining why order cannot matter.
var DetMap = &analysis.Analyzer{
	Name:     "detmap",
	Doc:      "flags nondeterministic map iteration in result-affecting packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetMap,
}

func runDetMap(pass *analysis.Pass) (any, error) {
	if !inResultAffectingPackage(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := collectSuppressions(pass)
	ins.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rng := n.(*ast.RangeStmt)
		if isTestFile(pass, rng.Pos()) {
			return
		}
		tv := pass.TypesInfo.TypeOf(rng.X)
		if tv == nil {
			return
		}
		if _, ok := tv.Underlying().(*types.Map); !ok {
			return
		}
		if isCollectOnlyBody(rng.Body) {
			return
		}
		supp.report(pass, rng.Pos(), "detmap",
			"range over map has nondeterministic iteration order; sort the keys first (or //lint:ignore detmap <reason> if order provably cannot affect results)")
	})
	return nil, nil
}

// isCollectOnlyBody reports whether every statement in the loop body is an
// append-to-slice assignment (s = append(s, ...)), the canonical
// harvest-keys-for-sorting idiom whose result is order-insensitive once
// sorted.
func isCollectOnlyBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return false
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		// The destination must be the same variable being appended to:
		// s = append(s, ...) — a pure accumulation.
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || len(call.Args) < 2 {
			return false
		}
		base, ok := call.Args[0].(*ast.Ident)
		if !ok || base.Name != lhs.Name {
			return false
		}
	}
	return true
}
