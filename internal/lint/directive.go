package lint

import (
	"golang.org/x/tools/go/analysis"
)

// Directive validates every //lint:ignore suppression in the repo: the
// directive must name at least one known analyzer (detmap, walltime,
// globalrand, hotalloc) and carry a non-empty reason. A suppression
// without a reason is a determinism bug waiting for its archaeology;
// this analyzer makes the reason load-bearing. Directive findings are
// themselves unsuppressable.
var Directive = &analysis.Analyzer{
	Name: "lintdirective",
	Doc:  "checks that every //lint:ignore names a known analyzer and carries a reason",
	Run:  runDirective,
}

func runDirective(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnore(c)
				if d == nil || d.malformed == "" {
					continue
				}
				pass.Report(analysis.Diagnostic{
					Pos:     d.pos,
					Message: "malformed //lint:ignore directive: " + d.malformed,
				})
			}
		}
	}
	return nil, nil
}
