package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}

func TestDetMap(t *testing.T) {
	// Flagged and clean cases inside a result-affecting package.
	linttest.Run(t, fixture("detmap", "sim"), "repro/internal/sim", lint.DetMap)
}

func TestDetMapIgnoresColdPackages(t *testing.T) {
	// The same range-over-map in a package outside the result-affecting set
	// produces nothing.
	linttest.Run(t, fixture("detmap", "cold"), "repro/internal/cold", lint.DetMap)
}

func TestWallTime(t *testing.T) {
	linttest.Run(t, fixture("walltime", "netsim"), "repro/internal/netsim", lint.WallTime)
}

func TestWallTimeAllowsCampaignWatchdog(t *testing.T) {
	linttest.Run(t, fixture("walltime", "campaign"), "repro/internal/campaign", lint.WallTime)
}

func TestWallTimeAllowsDistribTimeouts(t *testing.T) {
	// The distributed evaluation plane, like campaign, runs wall-clock
	// watchdogs around (not inside) simulations.
	linttest.Run(t, fixture("walltime", "distrib"), "repro/internal/distrib", lint.WallTime)
}

func TestDetMapPolicesDistrib(t *testing.T) {
	// distrib is exempt from walltime but still result-affecting: a map
	// iteration ordering bug there could reorder merged results.
	linttest.Run(t, fixture("detmap", "distrib"), "repro/internal/distrib", lint.DetMap)
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, fixture("globalrand", "app"), "repro/internal/app", lint.GlobalRand)
}

func TestGlobalRandAllowsRNGFile(t *testing.T) {
	// rng.go inside the sim package may construct raw generators; every
	// other file in the same package may not.
	linttest.Run(t, fixture("globalrand", "sim"), "repro/internal/sim", lint.GlobalRand)
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, fixture("hotalloc", "hot"), "repro/internal/netsim", lint.HotAlloc)
}

func TestDirective(t *testing.T) {
	// Missing reason rejected, unknown analyzer rejected, valid and
	// multi-analyzer suppressions accepted.
	linttest.Run(t, fixture("directive", "dir"), "repro/internal/dir", lint.Directive)
}

func TestValidSuppressionHonored(t *testing.T) {
	// The valid directives in the directive fixture must actually suppress
	// detmap: the fixture's only detmap diagnostics are the ones its want
	// comments demand (none on the valid/multiAnalyzer loops, and the
	// malformed-directive loops stay flagged because a broken directive
	// suppresses nothing).
	linttest.Run(t, fixture("directive", "suppression"), "repro/internal/sim", lint.DetMap)
}
