package distrib

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// --- in-process pipe workers -------------------------------------------------

// pipeWorker runs Serve in a goroutine over in-memory pipes: the full
// protocol without process spawning, so the coordinator's machinery is
// testable (and raceable) inside one test binary.
type pipeWorker struct {
	conn    *Conn
	closers []io.Closer
	done    chan struct{}
	err     error
}

func (w *pipeWorker) Conn() *Conn { return w.conn }

func (w *pipeWorker) Kill() {
	for _, c := range w.closers {
		c.Close()
	}
}

func (w *pipeWorker) Wait() error { <-w.done; return w.err }

// pipeFactory starts pipe workers; optsFor customizes each incarnation
// (chaos exits), and onStart observes every spawn.
type pipeFactory struct {
	optsFor func(slot, attempt int) ServeOptions
	onStart func(slot, attempt int)
}

func (f pipeFactory) Start(slot, attempt int) (WorkerHandle, error) {
	if f.onStart != nil {
		f.onStart(slot, attempt)
	}
	opts := ServeOptions{Parallel: 1}
	if f.optsFor != nil {
		opts = f.optsFor(slot, attempt)
	}
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	w := &pipeWorker{
		conn:    NewConn(fromWorkerR, toWorkerW),
		closers: []io.Closer{toWorkerR, toWorkerW, fromWorkerR, fromWorkerW},
		done:    make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		w.err = Serve(toWorkerR, fromWorkerW, opts)
		fromWorkerW.Close()
	}()
	return w, nil
}

// --- shared training configuration -------------------------------------------

// goldenTrainConfig mirrors internal/optimizer's golden fixture
// configuration (golden_train_test.go) so the distributed plane can be
// checked against the same recorded bytes. Keep the two in sync when the
// fixture is regenerated.
func goldenTrainConfig() optimizer.ConfigRange {
	return optimizer.ConfigRange{
		MinSenders:           1,
		MaxSenders:           2,
		LinkRateBps:          optimizer.Range{Lo: 10e6, Hi: 10e6},
		RTTMs:                optimizer.Range{Lo: 100, Hi: 150},
		OnMode:               workload.ByTime,
		MeanOnSeconds:        2,
		MeanOffSecs:          1,
		QueueCapacityPackets: 1000,
		SpecimenDuration:     2 * sim.Second,
		Specimens:            3,
	}
}

func goldenRemy(backend optimizer.BatchRunner) *optimizer.Remy {
	r := optimizer.New(goldenTrainConfig(), stats.DefaultObjective(1))
	r.Seed = 42
	r.Workers = 4
	r.CandidateRungs = 1
	r.ImprovementIters = 1
	r.EpochsPerSplit = 1
	r.MaxRules = 32
	r.Backend = backend
	return r
}

func trainBytes(t *testing.T, backend optimizer.BatchRunner) []byte {
	t.Helper()
	tree, _, err := goldenRemy(backend).Optimize(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(tree, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestCoordinator(t *testing.T, factory Factory, opts Options) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// --- protocol ----------------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	conn := NewConn(&buf, &buf)
	req := &EvalRequest{
		ID:        7,
		Objective: stats.DefaultObjective(0.5),
		Trees:     []json.RawMessage{json.RawMessage(`{"leaf":true}`)},
		Jobs: []WireJob{{
			Tree:     0,
			Specimen: optimizer.Specimen{Senders: 2, LinkRateBps: 1e7, RTTMs: 123.456789, Seed: -42},
			Config:   goldenTrainConfig(),
		}},
	}
	if err := conn.WriteFrame(&Frame{Type: TypeEval, Eval: req}); err != nil {
		t.Fatal(err)
	}
	got, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeEval || got.Eval == nil {
		t.Fatalf("got frame %+v", got)
	}
	if got.Eval.ID != 7 || got.Eval.Jobs[0].Specimen != req.Jobs[0].Specimen {
		t.Fatalf("round-trip mismatch: %+v", got.Eval)
	}
	if got.Eval.Jobs[0].Config != req.Jobs[0].Config {
		t.Fatalf("config mismatch: %+v", got.Eval.Jobs[0].Config)
	}
}

func TestFrameRejectsOversizeLength(t *testing.T) {
	// A corrupted length prefix must fail fast, not allocate gigabytes.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	conn := NewConn(&buf, io.Discard)
	if _, err := conn.ReadFrame(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want oversize error, got %v", err)
	}
}

func TestFrameMidStreamDeath(t *testing.T) {
	// A stream that dies inside a frame must not look like a clean EOF.
	var buf bytes.Buffer
	conn := NewConn(&buf, &buf)
	if err := conn.WriteFrame(&Frame{Type: TypeShutdown}); err != nil {
		t.Fatal(err)
	}
	truncated := bytes.NewReader(buf.Bytes()[:buf.Len()-2])
	if _, err := NewConn(truncated, io.Discard).ReadFrame(); err == nil || err == io.EOF {
		t.Fatalf("want mid-frame error, got %v", err)
	}
}

func TestTreeCodecPreservesWhiskerIndexing(t *testing.T) {
	// The wire carries per-whisker usage arrays indexed by whisker index;
	// this pins the codec property that makes that sound.
	tree := core.DefaultWhiskerTree()
	if err := tree.Split(0, core.Memory{AckEWMA: 1, SendEWMA: 2, RTTRatio: 1.5}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	decoded := &core.WhiskerTree{}
	if err := json.Unmarshal(data, decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.CanonicalKey() != tree.CanonicalKey() {
		t.Fatal("canonical key changed across the wire codec")
	}
	want := tree.Whiskers()
	got := decoded.Whiskers()
	if len(want) != len(got) {
		t.Fatalf("whisker count %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("whisker %d changed across the codec: %+v != %+v", i, got[i], want[i])
		}
	}
}

// --- coordinator routing and merge -------------------------------------------

// fakeEvalFactory starts workers that answer batches with synthetic results
// (Sum = the job's specimen seed) and record which slot served which
// specimens — coordinator logic without running simulations.
type fakeEvalFactory struct {
	mu     sync.Mutex
	served map[int][]int64 // slot -> specimen seeds, in dispatch order
}

func (f *fakeEvalFactory) Start(slot, attempt int) (WorkerHandle, error) {
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	w := &pipeWorker{
		conn:    NewConn(fromWorkerR, toWorkerW),
		closers: []io.Closer{toWorkerR, toWorkerW, fromWorkerR, fromWorkerW},
		done:    make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		defer fromWorkerW.Close()
		conn := NewConn(toWorkerR, fromWorkerW)
		conn.WriteFrame(&Frame{Type: TypeHello, Hello: &Hello{Version: ProtocolVersion}})
		for {
			fr, err := conn.ReadFrame()
			if err != nil {
				return
			}
			if fr.Type != TypeEval {
				return
			}
			results := make([]WireResult, len(fr.Eval.Jobs))
			for i, j := range fr.Eval.Jobs {
				f.mu.Lock()
				f.served[slot] = append(f.served[slot], j.Specimen.Seed)
				f.mu.Unlock()
				results[i] = WireResult{Sum: float64(j.Specimen.Seed), Flows: 1, Counts: []int64{1}, Consulted: []bool{true}}
			}
			conn.WriteFrame(&Frame{Type: TypeResult, Result: &EvalResponse{ID: fr.Eval.ID, Results: results}})
		}
	}()
	return w, nil
}

func TestAffinityRoutingAndOrderedMerge(t *testing.T) {
	factory := &fakeEvalFactory{served: make(map[int][]int64)}
	c := newTestCoordinator(t, factory, Options{Procs: 3})

	tree := core.DefaultWhiskerTree()
	cfg := goldenTrainConfig()
	mkJobs := func(n int) []optimizer.BatchJob {
		jobs := make([]optimizer.BatchJob, n)
		for i := range jobs {
			jobs[i] = optimizer.BatchJob{Tree: tree, Specimen: optimizer.Specimen{Senders: 1, LinkRateBps: 1e7, RTTMs: 100, Seed: int64(1000 + i)}, Config: cfg, Affinity: i}
		}
		return jobs
	}

	// Two rounds of batches: every affinity must land on the same slot both
	// times, and results must come back in job order.
	for round := 0; round < 2; round++ {
		jobs := mkJobs(7)
		results, err := c.RunBatch(stats.DefaultObjective(1), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Sum != float64(jobs[i].Specimen.Seed) {
				t.Fatalf("round %d: result %d carries sum %v, want %v (merge order broken)", round, i, r.Sum, jobs[i].Specimen.Seed)
			}
		}
	}
	factory.mu.Lock()
	defer factory.mu.Unlock()
	for slot, seeds := range factory.served {
		for _, seed := range seeds {
			affinity := int(seed - 1000)
			if affinity%3 != slot {
				t.Fatalf("affinity %d served by slot %d, want %d", affinity, slot, affinity%3)
			}
		}
	}
}

// --- distributed == local ----------------------------------------------------

func TestDistributedTrainingMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("training run is too slow for -short")
	}
	local := trainBytes(t, nil)
	// The in-process run must itself match the recorded golden fixture; the
	// distributed runs then pin byte-identity against the same bytes.
	fixture, err := os.ReadFile(filepath.Join("..", "optimizer", "testdata", "golden_train.json"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	if !bytes.Equal(local, fixture) {
		t.Fatal("in-process run differs from the optimizer golden fixture (is the distrib test config out of sync?)")
	}
	for _, procs := range []int{1, 2, 4} {
		c := newTestCoordinator(t, pipeFactory{}, Options{Procs: procs})
		dist := trainBytes(t, c)
		if !bytes.Equal(fixture, dist) {
			t.Fatalf("distributed training with %d workers differs from the golden fixture", procs)
		}
		st := c.Stats()
		if st.Batches == 0 || st.Jobs == 0 {
			t.Fatalf("coordinator did no work: %+v", st)
		}
	}
}

func TestCrashedWorkerRespawnsAndRunStaysByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("training run is too slow for -short")
	}
	local := trainBytes(t, nil)
	// Worker 0's first incarnation dies after two batches — mid-round — and
	// each respawned incarnation also dies after five more, so the fail-safe
	// path is exercised repeatedly over the run.
	factory := pipeFactory{optsFor: func(slot, attempt int) ServeOptions {
		opts := ServeOptions{Parallel: 1}
		if slot == 0 && attempt == 0 {
			opts.ExitAfterBatches = 2
		} else if slot == 0 {
			opts.ExitAfterBatches = 5
		}
		return opts
	}}
	c := newTestCoordinator(t, factory, Options{Procs: 2, RetryBackoff: time.Millisecond})
	dist := trainBytes(t, c)
	if !bytes.Equal(local, dist) {
		t.Fatal("training with a crashing worker diverged from the in-process run")
	}
	st := c.Stats()
	if st.Respawns == 0 || st.Redispatches == 0 {
		t.Fatalf("chaos run never exercised the respawn path: %+v", st)
	}
}

func TestRetriesExhaustedSurfacesError(t *testing.T) {
	// Every incarnation of every worker dies immediately: the batch must
	// fail after the bounded retries, not hang or loop forever.
	factory := pipeFactory{optsFor: func(slot, attempt int) ServeOptions {
		return ServeOptions{Parallel: 1, ExitAfterBatches: -1}
	}}
	c := newTestCoordinator(t, factory, Options{Procs: 1, Retries: 1, RetryBackoff: time.Millisecond})
	jobs := []optimizer.BatchJob{{Tree: core.DefaultWhiskerTree(), Specimen: optimizer.Specimen{Senders: 1, LinkRateBps: 1e7, RTTMs: 100, Seed: 1}, Config: goldenTrainConfig()}}
	_, err := c.RunBatch(stats.DefaultObjective(1), jobs)
	if err == nil || !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("want bounded-retry failure, got %v", err)
	}
}

func TestBatchLevelErrorIsNotRetried(t *testing.T) {
	// A worker that answers with a batch error reports a deterministic
	// failure; the coordinator must surface it without burning respawns.
	var starts int32
	factory := pipeFactory{
		onStart: func(slot, attempt int) { starts++ },
		optsFor: func(slot, attempt int) ServeOptions { return ServeOptions{Parallel: 1} },
	}
	c := newTestCoordinator(t, factory, Options{Procs: 1, Retries: 3, RetryBackoff: time.Millisecond})
	// A design range whose workload cannot compile (non-positive exponential
	// mean) produces a deterministic worker-side error.
	badCfg := goldenTrainConfig()
	badCfg.MeanOffSecs = 0
	jobs := []optimizer.BatchJob{{Tree: core.DefaultWhiskerTree(), Specimen: optimizer.Specimen{Senders: 1, LinkRateBps: 1e7, RTTMs: 100, Seed: 1}, Config: badCfg}}
	_, err := c.RunBatch(stats.DefaultObjective(1), jobs)
	if err == nil {
		t.Fatal("want batch error")
	}
	if st := c.Stats(); st.Redispatches != 0 {
		t.Fatalf("deterministic batch failure was retried: %+v", st)
	}
	if starts != 1 {
		t.Fatalf("worker restarted %d times for a non-retryable failure", starts)
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	factory := pipeFactory{} // real Serve sends the current version
	c, err := NewCoordinator(factory, Options{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// A worker speaking a different protocol version must be refused.
	bad := factoryFunc(func(slot, attempt int) (WorkerHandle, error) {
		toWorkerR, toWorkerW := io.Pipe()
		fromWorkerR, fromWorkerW := io.Pipe()
		w := &pipeWorker{
			conn:    NewConn(fromWorkerR, toWorkerW),
			closers: []io.Closer{toWorkerR, toWorkerW, fromWorkerR, fromWorkerW},
			done:    make(chan struct{}),
		}
		go func() {
			defer close(w.done)
			defer fromWorkerW.Close()
			conn := NewConn(toWorkerR, fromWorkerW)
			conn.WriteFrame(&Frame{Type: TypeHello, Hello: &Hello{Version: ProtocolVersion + 1}})
		}()
		return w, nil
	})
	if _, err := NewCoordinator(bad, Options{Procs: 1}); err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("want version-mismatch error, got %v", err)
	}
}

type factoryFunc func(slot, attempt int) (WorkerHandle, error)

func (f factoryFunc) Start(slot, attempt int) (WorkerHandle, error) { return f(slot, attempt) }

// TestServeChaosExit pins the worker-side contract: the chaos exit happens
// before the fatal batch is answered, so the coordinator's re-dispatch is
// what preserves those jobs.
func TestServeChaosExit(t *testing.T) {
	toWorkerR, toWorkerW := io.Pipe()
	fromWorkerR, fromWorkerW := io.Pipe()
	served := make(chan error, 1)
	go func() {
		served <- Serve(toWorkerR, fromWorkerW, ServeOptions{Parallel: 1, ExitAfterBatches: -1})
	}()
	conn := NewConn(fromWorkerR, toWorkerW)
	if f, err := conn.ReadFrame(); err != nil || f.Type != TypeHello {
		t.Fatalf("handshake: %v %v", f, err)
	}
	req := &EvalRequest{ID: 1, Objective: stats.DefaultObjective(1)}
	if err := conn.WriteFrame(&Frame{Type: TypeEval, Eval: req}); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != ErrChaosExit {
		t.Fatalf("want ErrChaosExit, got %v", err)
	}
}

// TestWatchdogKillsWedgedWorker pins the per-batch watchdog: a worker that
// never answers is killed and the batch fails over to a respawn.
func TestWatchdogKillsWedgedWorker(t *testing.T) {
	var starts int
	factory := factoryFunc(func(slot, attempt int) (WorkerHandle, error) {
		starts++
		if attempt >= 1 {
			// Respawns behave: real workers.
			return pipeFactory{}.Start(slot, attempt)
		}
		// First incarnation: handshakes, then goes silent forever.
		toWorkerR, toWorkerW := io.Pipe()
		fromWorkerR, fromWorkerW := io.Pipe()
		w := &pipeWorker{
			conn:    NewConn(fromWorkerR, toWorkerW),
			closers: []io.Closer{toWorkerR, toWorkerW, fromWorkerR, fromWorkerW},
			done:    make(chan struct{}),
		}
		go func() {
			defer close(w.done)
			conn := NewConn(toWorkerR, fromWorkerW)
			conn.WriteFrame(&Frame{Type: TypeHello, Hello: &Hello{Version: ProtocolVersion}})
			// Read batches, never answer; exit (unblocking Wait) once the
			// coordinator kills the pipes.
			for {
				if _, err := conn.ReadFrame(); err != nil {
					return
				}
			}
		}()
		return w, nil
	})
	c := newTestCoordinator(t, factory, Options{Procs: 1, BatchTimeout: 100 * time.Millisecond, Retries: 1, RetryBackoff: time.Millisecond})
	jobs := []optimizer.BatchJob{{Tree: core.DefaultWhiskerTree(), Specimen: optimizer.Specimen{Senders: 1, LinkRateBps: 1e7, RTTMs: 100, Seed: 9}, Config: quickConfig()}}
	results, err := c.RunBatch(stats.DefaultObjective(1), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Flows == 0 {
		t.Fatalf("bad results after watchdog failover: %+v", results)
	}
	if starts != 2 {
		t.Fatalf("expected exactly one respawn, got %d starts", starts)
	}
}

// quickConfig is a sub-second design range for tests that only need one
// real simulation.
func quickConfig() optimizer.ConfigRange {
	cfg := goldenTrainConfig()
	cfg.SpecimenDuration = sim.Second / 2
	return cfg
}

// TestEvaluatorBackendStatsUnchanged pins that the memo cache and pruning
// stay coordinator-side: a distributed evaluation performs the same number
// of simulated runs, cache hits and pruned runs as an in-process one.
func TestEvaluatorBackendStatsUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("training run is too slow for -short")
	}
	runStats := func(backend optimizer.BatchRunner) optimizer.EvalStats {
		r := goldenRemy(backend)
		if _, _, err := r.Optimize(nil, 2); err != nil {
			t.Fatal(err)
		}
		return r.EvalStats()
	}
	local := runStats(nil)
	c := newTestCoordinator(t, pipeFactory{}, Options{Procs: 2})
	dist := runStats(c)
	if local != dist {
		t.Fatalf("evaluator stats differ: local %+v, distributed %+v", local, dist)
	}
	if st := c.Stats(); st.Jobs != dist.SimulatedRuns {
		t.Fatalf("coordinator shipped %d jobs, evaluator simulated %d", st.Jobs, dist.SimulatedRuns)
	}
}

func TestCoordinatorRejectsZeroProcs(t *testing.T) {
	if _, err := NewCoordinator(pipeFactory{}, Options{Procs: 0}); err == nil {
		t.Fatal("want error for Procs=0")
	}
}

// --- wire-float exactness -----------------------------------------------------

func TestWireResultFloatExactness(t *testing.T) {
	// The determinism argument leans on encoding/json round-tripping
	// float64 exactly; pin it with adversarial values.
	vals := []float64{0, 1.0 / 3.0, -1e9, 4.9e-324, 1.7976931348623157e308, 123.45600000000002}
	for _, v := range vals {
		data, err := json.Marshal(WireResult{Sum: v})
		if err != nil {
			t.Fatal(err)
		}
		var got WireResult
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Sum != v {
			t.Fatalf("float %v did not round-trip (got %v)", v, got.Sum)
		}
	}
}
