package distrib

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/optimizer"
)

// ErrChaosExit is returned by Serve when ServeOptions.ExitAfterBatches
// fires: the worker abandons the stream without answering the in-flight
// request, simulating a mid-round crash. cmd/remy turns it into a non-zero
// exit; the coordinator sees the dead stream, respawns the slot and
// re-dispatches the batch.
var ErrChaosExit = errors.New("distrib: chaos exit (ExitAfterBatches reached)")

// ServeOptions configures a worker loop.
type ServeOptions struct {
	// Parallel is the worker's inner simulation pool (scenario.Runner
	// workers); <= 0 means 1. The parallelism split lives at the process
	// level by default: N worker processes × 1 inner goroutine measures and
	// scales cleanly, and a machine-sized worker can raise this instead.
	Parallel int
	// ExitAfterBatches, when non-zero, makes Serve return ErrChaosExit
	// instead of answering batch number ExitAfterBatches+1 (negative: the
	// very first batch). It exists for the crash-respawn tests and the CI
	// chaos smoke — a deterministic stand-in for kill -9 mid-round.
	ExitAfterBatches int
	// Logf, if non-nil, receives progress messages (cmd/remy sends them to
	// stderr, which the coordinator process passes through).
	Logf func(format string, args ...any)
}

func (o ServeOptions) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return 1
}

func (o ServeOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Serve runs the worker side of the protocol over the given stream until
// the peer shuts it down (clean io.EOF or a shutdown frame → nil) or the
// stream breaks. It sends the handshake hello, then answers eval batches by
// running each batch's jobs through optimizer.RunBatchLocal — the exact
// code path an in-process evaluation takes.
func Serve(r io.Reader, w io.Writer, opts ServeOptions) error {
	conn := NewConn(r, w)
	hello := &Hello{Version: ProtocolVersion, Parallel: opts.parallel(), PID: os.Getpid()}
	if err := conn.WriteFrame(&Frame{Type: TypeHello, Hello: hello}); err != nil {
		return fmt.Errorf("distrib: sending hello: %w", err)
	}
	served := 0
	for {
		f, err := conn.ReadFrame()
		if err == io.EOF {
			return nil // coordinator closed the stream; clean exit
		}
		if err != nil {
			return err
		}
		switch f.Type {
		case TypeShutdown:
			return nil
		case TypeEval:
			if f.Eval == nil {
				return fmt.Errorf("distrib: eval frame without payload")
			}
			if opts.ExitAfterBatches != 0 && served >= opts.ExitAfterBatches {
				return ErrChaosExit
			}
			resp := serveEval(f.Eval, opts)
			if err := conn.WriteFrame(&Frame{Type: TypeResult, Result: resp}); err != nil {
				return err
			}
			served++
			opts.logf("distrib worker: batch %d done (%d jobs)", f.Eval.ID, len(f.Eval.Jobs))
		default:
			return fmt.Errorf("distrib: unexpected frame type %q", f.Type)
		}
	}
}

// serveEval executes one batch. Request-level failures (undecodable trees,
// failing simulations) come back in the response's Error field rather than
// tearing the stream down: the worker is still healthy, and the coordinator
// must distinguish "this batch is malformed" from "this worker died".
func serveEval(req *EvalRequest, opts ServeOptions) *EvalResponse {
	jobs, err := decodeJobs(req)
	if err != nil {
		return &EvalResponse{ID: req.ID, Error: err.Error()}
	}
	results, err := optimizer.RunBatchLocal(req.Objective, opts.parallel(), jobs)
	if err != nil {
		return &EvalResponse{ID: req.ID, Error: err.Error()}
	}
	wire := make([]WireResult, len(results))
	for i, br := range results {
		wire[i] = WireResult{Sum: br.Sum, Flows: br.Flows, Counts: br.Counts, Consulted: br.Consulted, Samples: br.Samples}
	}
	return &EvalResponse{ID: req.ID, Results: wire}
}
