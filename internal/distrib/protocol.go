// Package distrib is the optimizer's distributed evaluation plane: a
// coordinator that shards specimen-simulation batches across persistent
// worker processes, and the worker loop those processes run. The wire
// protocol is length-prefixed JSON frames — over stdio for locally spawned
// workers, but the transport is any io.Reader/io.Writer pair, so pointing a
// worker slot at a TCP connection is a dial, not a redesign.
//
// Determinism is the contract: every job (tree, specimen, design config) is
// self-contained and every worker executes it through the same
// optimizer.RunBatchLocal code path an in-process run uses, with trees
// carried in the WhiskerTree JSON codec (whose whisker indexing round-trips
// exactly, as do all float64 values under encoding/json). The coordinator
// merges results in job order, so the trained tree is byte-identical to an
// in-process run at the same seed — at any worker count, and across worker
// crashes and respawns.
package distrib

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/optimizer"
	"repro/internal/stats"
)

// ProtocolVersion is bumped on any incompatible change to the frame or
// message encodings. Coordinator and worker exchange it in the handshake
// and refuse to proceed on a mismatch — a silent skew between binaries
// must not produce silently different trees.
const ProtocolVersion = 1

// MaxFrameBytes bounds a single frame. Batches carry at most one tree table
// plus per-job specimens and per-rule usage arrays; 256 MiB is far beyond
// any legitimate batch and exists to turn a corrupted length prefix into an
// error instead of an allocation bomb.
const MaxFrameBytes = 256 << 20

// Frame types.
const (
	// TypeHello is the worker's first frame: its protocol version.
	TypeHello = "hello"
	// TypeEval carries a batch of jobs coordinator → worker.
	TypeEval = "eval"
	// TypeResult carries a batch's results worker → coordinator.
	TypeResult = "result"
	// TypeShutdown asks the worker to exit cleanly.
	TypeShutdown = "shutdown"
)

// Frame is the tagged union every message travels in. Exactly the field
// matching Type is populated.
type Frame struct {
	Type   string        `json:"type"`
	Hello  *Hello        `json:"hello,omitempty"`
	Eval   *EvalRequest  `json:"eval,omitempty"`
	Result *EvalResponse `json:"result,omitempty"`
}

// Hello is the worker's handshake: sent once, immediately after start.
type Hello struct {
	Version int `json:"version"`
	// Parallel is the worker's inner simulation pool size (informational).
	Parallel int `json:"parallel"`
	PID      int `json:"pid"`
}

// EvalRequest is one batch of specimen simulations. Candidate trees repeat
// across a batch's jobs, so they are carried once in a table and referenced
// by index.
type EvalRequest struct {
	// ID matches a response to its request; the coordinator increments it
	// per dispatched batch (re-dispatches after a crash get a fresh ID).
	ID uint64 `json:"id"`
	// Objective is the evaluator configuration the scores depend on.
	Objective stats.Objective `json:"objective"`
	// Trees is the batch's candidate-tree table in the WhiskerTree JSON
	// codec — the same encoding SaveFile and the training checkpoints use.
	Trees []json.RawMessage `json:"trees"`
	Jobs  []WireJob         `json:"jobs"`
}

// WireJob is one (tree, specimen) simulation within a batch.
type WireJob struct {
	// Tree indexes the request's tree table.
	Tree        int                   `json:"tree"`
	Specimen    optimizer.Specimen    `json:"specimen"`
	Config      optimizer.ConfigRange `json:"config"`
	WithSamples bool                  `json:"with_samples,omitempty"`
}

// EvalResponse carries a batch's per-job results, in job order.
type EvalResponse struct {
	ID      uint64       `json:"id"`
	Results []WireResult `json:"results,omitempty"`
	// Error reports a batch that could not be executed (bad tree bytes,
	// invalid config). The coordinator treats it as fatal for the batch —
	// a malformed request cannot be fixed by retrying.
	Error string `json:"error,omitempty"`
}

// WireResult mirrors optimizer.BatchResult. All values are float64/int64
// and round-trip exactly through JSON.
type WireResult struct {
	Sum       float64         `json:"sum"`
	Flows     int             `json:"flows"`
	Counts    []int64         `json:"counts"`
	Consulted []bool          `json:"consulted"`
	Samples   [][]core.Memory `json:"samples,omitempty"`
}

// Conn frames messages over a byte stream: a 4-byte big-endian length
// prefix followed by the frame's JSON. Reads and writes are each serialized
// by their own mutex, so one goroutine may read while another writes.
type Conn struct {
	rmu sync.Mutex
	r   *bufio.Reader
	wmu sync.Mutex
	w   *bufio.Writer
}

// NewConn wraps a read/write pair (a spawned process's stdout/stdin, a
// net.Conn, an in-memory pipe) in the frame codec.
func NewConn(r io.Reader, w io.Writer) *Conn {
	return &Conn{r: bufio.NewReaderSize(r, 1<<16), w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteFrame encodes and sends one frame.
func (c *Conn) WriteFrame(f *Frame) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("distrib: encoding %s frame: %w", f.Type, err)
	}
	if len(data) > MaxFrameBytes {
		return fmt.Errorf("distrib: %s frame of %d bytes exceeds the %d-byte limit", f.Type, len(data), MaxFrameBytes)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	return c.w.Flush()
}

// ReadFrame reads and decodes the next frame. It returns io.EOF only on a
// clean boundary (no partial frame consumed); a stream that dies mid-frame
// surfaces as io.ErrUnexpectedEOF.
func (c *Conn) ReadFrame() (*Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("distrib: stream died mid-header: %w", err)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("distrib: frame length %d exceeds the %d-byte limit (corrupt stream?)", n, MaxFrameBytes)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(c.r, data); err != nil {
		return nil, fmt.Errorf("distrib: stream died mid-frame: %w", err)
	}
	f := &Frame{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("distrib: decoding frame: %w", err)
	}
	return f, nil
}

// encodeJobs converts a coordinator-side job slice to the wire form,
// deduplicating trees by identity into the request's tree table. Job order
// is preserved — the response's results line up index for index.
func encodeJobs(jobs []optimizer.BatchJob) ([]json.RawMessage, []WireJob, error) {
	trees := make([]json.RawMessage, 0, 4)
	index := make(map[*core.WhiskerTree]int, 4)
	wire := make([]WireJob, len(jobs))
	for i, j := range jobs {
		ti, ok := index[j.Tree]
		if !ok {
			data, err := json.Marshal(j.Tree)
			if err != nil {
				return nil, nil, fmt.Errorf("distrib: encoding tree: %w", err)
			}
			ti = len(trees)
			trees = append(trees, data)
			index[j.Tree] = ti
		}
		wire[i] = WireJob{Tree: ti, Specimen: j.Specimen, Config: j.Config, WithSamples: j.WithSamples}
	}
	return trees, wire, nil
}

// decodeJobs is the worker-side inverse of encodeJobs.
func decodeJobs(req *EvalRequest) ([]optimizer.BatchJob, error) {
	trees := make([]*core.WhiskerTree, len(req.Trees))
	for i, raw := range req.Trees {
		t := &core.WhiskerTree{}
		if err := json.Unmarshal(raw, t); err != nil {
			return nil, fmt.Errorf("distrib: decoding tree %d: %w", i, err)
		}
		trees[i] = t
	}
	jobs := make([]optimizer.BatchJob, len(req.Jobs))
	for i, wj := range req.Jobs {
		if wj.Tree < 0 || wj.Tree >= len(trees) {
			return nil, fmt.Errorf("distrib: job %d references tree %d of %d", i, wj.Tree, len(trees))
		}
		jobs[i] = optimizer.BatchJob{Tree: trees[wj.Tree], Specimen: wj.Specimen, Config: wj.Config, WithSamples: wj.WithSamples}
	}
	return jobs, nil
}
