package distrib

import (
	"fmt"
	"io"
	"os"
	"os/exec"
)

// ProcessFactory spawns local worker processes speaking the protocol over
// their stdio. cmd/remy points it at its own binary with the -worker flag,
// so one build artifact is both coordinator and worker.
type ProcessFactory struct {
	// Path is the worker binary.
	Path string
	// Args are passed to every worker.
	Args []string
	// ArgsFor, if non-nil, appends per-(slot, attempt) arguments — how the
	// chaos smoke gives exactly one incarnation of one worker an
	// exit-after-N-batches flag.
	ArgsFor func(slot, attempt int) []string
	// Env entries are appended to the parent environment.
	Env []string
	// Stderr receives the workers' stderr (default os.Stderr), so worker
	// logs surface in the coordinator's terminal.
	Stderr io.Writer
}

// Start implements Factory.
func (f ProcessFactory) Start(slot, attempt int) (WorkerHandle, error) {
	args := append([]string(nil), f.Args...)
	if f.ArgsFor != nil {
		args = append(args, f.ArgsFor(slot, attempt)...)
	}
	cmd := exec.Command(f.Path, args...)
	cmd.Env = append(os.Environ(), f.Env...)
	if f.Stderr != nil {
		cmd.Stderr = f.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("distrib: worker stdout: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("distrib: starting %s: %w", f.Path, err)
	}
	return &procHandle{cmd: cmd, conn: NewConn(stdout, stdin), stdin: stdin}, nil
}

// procHandle is a spawned worker process. Killing it closes its pipes,
// which unblocks any coordinator read in flight — the property the batch
// watchdog relies on.
type procHandle struct {
	cmd   *exec.Cmd
	conn  *Conn
	stdin io.Closer
}

func (h *procHandle) Conn() *Conn { return h.conn }

func (h *procHandle) Kill() {
	h.stdin.Close()
	if h.cmd.Process != nil {
		h.cmd.Process.Kill()
	}
}

func (h *procHandle) Wait() error { return h.cmd.Wait() }
