package distrib

import (
	"fmt"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchConfig is a mid-sized design range: 8 specimens so a 2- or 4-process
// fleet has a real shard per worker, with specimens long enough that
// simulation work (not per-batch framing) dominates a round, as it does in
// a real training run.
func benchConfig() optimizer.ConfigRange {
	cfg := goldenTrainConfig()
	cfg.Specimens = 8
	cfg.SpecimenDuration = 10 * sim.Second
	return cfg
}

func benchRemy(backend optimizer.BatchRunner) *optimizer.Remy {
	r := optimizer.New(benchConfig(), stats.DefaultObjective(1))
	r.Seed = 42
	// Workers=1 makes the in-process baseline single-threaded, mirroring the
	// 1 inner goroutine each worker process runs: the comparison measures
	// process-level scaling, nothing else.
	r.Workers = 1
	r.CandidateRungs = 1
	r.ImprovementIters = 1
	r.EpochsPerSplit = 1
	r.MaxRules = 32
	r.Backend = backend
	return r
}

// BenchmarkDistribRound measures one optimization round in-process versus
// distributed over 1, 2 and 4 spawned worker processes (re-executions of the
// test binary). The coordinator and its fleet persist across iterations, so
// iterations after the first measure the steady warm-worker state a long
// training run lives in.
func BenchmarkDistribRound(b *testing.B) {
	run := func(b *testing.B, backend optimizer.BatchRunner) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := benchRemy(backend).Optimize(nil, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("inprocess", func(b *testing.B) { run(b, nil) })
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			c, err := NewCoordinator(reexecFactory{}, Options{Procs: procs})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			run(b, c)
		})
	}
}
