package distrib

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/optimizer"
	"repro/internal/stats"
)

// WorkerHandle is one live worker as the coordinator sees it: a framed
// connection plus lifecycle control. Kill must unblock any pending read on
// the connection (for a spawned process, killing it closes its pipes).
type WorkerHandle interface {
	Conn() *Conn
	Kill()
	Wait() error
}

// Factory starts workers. slot is the stable worker index in [0, Procs);
// attempt counts spawns of that slot (0 for the first, 1 for the first
// respawn, ...), letting chaos factories crash only specific incarnations.
type Factory interface {
	Start(slot, attempt int) (WorkerHandle, error)
}

// Options tunes the coordinator's fail-safe machinery. The defaults match
// internal/campaign's posture: generous watchdogs, a couple of bounded
// retries, fail loudly after that.
type Options struct {
	// Procs is the number of worker slots; must be >= 1.
	Procs int
	// BatchTimeout bounds one batch dispatch wall-clock (watchdog); <= 0
	// means 5 minutes. A worker that blows the watchdog is killed and its
	// batch re-dispatched to a fresh incarnation.
	BatchTimeout time.Duration
	// Retries is how many additional dispatch attempts a batch gets after a
	// worker failure before the run aborts; < 0 means 0, default 2.
	Retries int
	// RetryBackoff is the pause before a re-dispatch (default 100 ms).
	RetryBackoff time.Duration
	// HandshakeTimeout bounds the wait for a fresh worker's hello frame
	// (<= 0 means 30 seconds).
	HandshakeTimeout time.Duration
	// Logf, if non-nil, receives progress and respawn messages.
	Logf func(format string, args ...any)
}

func (o Options) batchTimeout() time.Duration {
	if o.BatchTimeout > 0 {
		return o.BatchTimeout
	}
	return 5 * time.Minute
}

func (o Options) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return 2
	}
	return o.Retries
}

func (o Options) retryBackoff() time.Duration {
	if o.RetryBackoff > 0 {
		return o.RetryBackoff
	}
	return 100 * time.Millisecond
}

func (o Options) handshakeTimeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	return 30 * time.Second
}

// Stats counts the coordinator's work and its fail-safe activations.
type Stats struct {
	// Batches is the number of batch dispatches that succeeded.
	Batches int64
	// Jobs is the number of jobs those batches carried.
	Jobs int64
	// Respawns counts worker (re)spawns beyond the initial fleet.
	Respawns int64
	// Redispatches counts batch attempts beyond the first.
	Redispatches int64
}

// slot is one worker position. Its handle is touched only by New/Close and
// by the slot's own dispatch goroutine during a RunBatch call — RunBatch
// itself is not concurrency-safe, matching the evaluator's serialized use.
type slot struct {
	index   int
	attempt int
	handle  WorkerHandle
}

// Coordinator shards evaluation batches across a fleet of persistent
// workers. It implements optimizer.BatchRunner: plug it into
// Remy.Backend/Evaluator.Backend and every pending simulation batch fans
// out over the fleet.
//
// Sharding is by job affinity (the specimen's index in the evaluation's
// specimen set): affinity i always lands on slot i mod Procs. Within an
// optimization round the specimen set is fixed, so each worker re-simulates
// the same specimens for every candidate batch and its per-process warm
// state (pooled engines, reusable sessions) stays hot. Results merge in job
// order, so the evaluator sees exactly what an in-process run would.
type Coordinator struct {
	factory Factory
	opts    Options
	slots   []*slot
	nextID  atomic.Uint64
	closed  bool

	mu    sync.Mutex
	stats Stats
}

// NewCoordinator starts the fleet and completes every worker's handshake.
// On error the already-started workers are killed.
func NewCoordinator(factory Factory, opts Options) (*Coordinator, error) {
	if opts.Procs < 1 {
		return nil, fmt.Errorf("distrib: Procs must be >= 1, got %d", opts.Procs)
	}
	c := &Coordinator{factory: factory, opts: opts}
	for i := 0; i < opts.Procs; i++ {
		c.slots = append(c.slots, &slot{index: i})
	}
	for _, s := range c.slots {
		if err := c.ensureWorker(s); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ensureWorker spawns the slot's worker if it has none and verifies the
// handshake under a timeout.
func (c *Coordinator) ensureWorker(s *slot) error {
	if s.handle != nil {
		return nil
	}
	h, err := c.factory.Start(s.index, s.attempt)
	if err != nil {
		return fmt.Errorf("distrib: starting worker %d (attempt %d): %w", s.index, s.attempt, err)
	}
	if s.attempt > 0 {
		c.mu.Lock()
		c.stats.Respawns++
		c.mu.Unlock()
		c.logf("distrib: worker %d respawned (spawn %d)", s.index, s.attempt)
	}
	s.attempt++
	f, err := readFrameTimeout(h, c.opts.handshakeTimeout())
	if err != nil {
		h.Kill()
		h.Wait()
		return fmt.Errorf("distrib: worker %d handshake: %w", s.index, err)
	}
	if f.Type != TypeHello || f.Hello == nil {
		h.Kill()
		h.Wait()
		return fmt.Errorf("distrib: worker %d sent %q before hello", s.index, f.Type)
	}
	if f.Hello.Version != ProtocolVersion {
		h.Kill()
		h.Wait()
		return fmt.Errorf("distrib: worker %d speaks protocol v%d, coordinator v%d — mixed binaries?", s.index, f.Hello.Version, ProtocolVersion)
	}
	s.handle = h
	return nil
}

// killWorker hard-stops a slot's worker (if any) and reaps it.
func (c *Coordinator) killWorker(s *slot) {
	if s.handle == nil {
		return
	}
	s.handle.Kill()
	s.handle.Wait()
	s.handle = nil
}

// readFrameTimeout reads one frame from the handle's connection under a
// wall-clock watchdog. On timeout the worker is killed, which unblocks the
// reading goroutine; its late result is dropped via the buffered channel.
func readFrameTimeout(h WorkerHandle, d time.Duration) (*Frame, error) {
	type readResult struct {
		f   *Frame
		err error
	}
	ch := make(chan readResult, 1)
	go func() {
		f, err := h.Conn().ReadFrame()
		ch <- readResult{f, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.f, r.err
	case <-timer.C:
		h.Kill()
		return nil, fmt.Errorf("distrib: no frame within the %v watchdog; worker killed", d)
	}
}

// errBatch marks batch-level (non-retryable) failures: the worker is
// healthy but the batch itself cannot succeed.
type errBatch struct{ err error }

func (e errBatch) Error() string { return e.err.Error() }

// RunBatch implements optimizer.BatchRunner: shard jobs across the fleet by
// affinity, execute every shard's batch (in parallel across workers, with
// watchdog + respawn + bounded re-dispatch per batch), and merge results in
// job order. Not safe for concurrent calls — the evaluator serializes its
// batches, and worker state is per-slot.
func (c *Coordinator) RunBatch(objective stats.Objective, jobs []optimizer.BatchJob) ([]optimizer.BatchResult, error) {
	if c.closed {
		return nil, fmt.Errorf("distrib: coordinator is closed")
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	n := len(c.slots)
	groups := make([][]int, n)
	for i, j := range jobs {
		w := j.Affinity % n
		if w < 0 {
			w += n
		}
		groups[w] = append(groups[w], i)
	}

	results := make([]optimizer.BatchResult, len(jobs))
	errs := make(chan error, n)
	active := 0
	for w := 0; w < n; w++ {
		if len(groups[w]) == 0 {
			continue
		}
		active++
		go func(s *slot, idxs []int) {
			errs <- c.runWorkerBatch(s, objective, jobs, idxs, results)
		}(c.slots[w], groups[w])
	}
	var firstErr error
	for i := 0; i < active; i++ {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	c.mu.Lock()
	c.stats.Batches += int64(active)
	c.stats.Jobs += int64(len(jobs))
	c.mu.Unlock()
	return results, nil
}

// runWorkerBatch drives one slot through one batch: dispatch, await under
// the watchdog, and on worker failure kill + respawn + re-dispatch the
// identical jobs (same specimens, same seeds — determinism makes the retry
// safe) up to the retry bound.
func (c *Coordinator) runWorkerBatch(s *slot, objective stats.Objective, jobs []optimizer.BatchJob, idxs []int, results []optimizer.BatchResult) error {
	batch := make([]optimizer.BatchJob, len(idxs))
	for i, ji := range idxs {
		batch[i] = jobs[ji]
	}
	trees, wire, err := encodeJobs(batch)
	if err != nil {
		return err
	}
	attempts := 1 + c.opts.retries()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.mu.Lock()
			c.stats.Redispatches++
			c.mu.Unlock()
			c.logf("distrib: worker %d: re-dispatching batch of %d jobs (attempt %d/%d) after: %v", s.index, len(batch), a+1, attempts, lastErr)
			time.Sleep(c.opts.retryBackoff())
		}
		wireResults, err := c.tryBatch(s, objective, trees, wire)
		if err == nil {
			for i, ji := range idxs {
				wr := wireResults[i]
				results[ji] = optimizer.BatchResult{Sum: wr.Sum, Flows: wr.Flows, Counts: wr.Counts, Consulted: wr.Consulted, Samples: wr.Samples}
			}
			return nil
		}
		var be errBatch
		if errors.As(err, &be) {
			return fmt.Errorf("distrib: worker %d: batch failed: %w", s.index, be.err)
		}
		lastErr = err
		c.killWorker(s)
	}
	return fmt.Errorf("distrib: worker %d: batch failed after %d attempts: %w", s.index, attempts, lastErr)
}

// tryBatch performs one dispatch attempt against the slot's (possibly
// respawned) worker.
func (c *Coordinator) tryBatch(s *slot, objective stats.Objective, trees []json.RawMessage, wire []WireJob) ([]WireResult, error) {
	if err := c.ensureWorker(s); err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	req := &EvalRequest{ID: id, Objective: objective, Trees: trees, Jobs: wire}
	if err := s.handle.Conn().WriteFrame(&Frame{Type: TypeEval, Eval: req}); err != nil {
		return nil, fmt.Errorf("sending batch: %w", err)
	}
	f, err := readFrameTimeout(s.handle, c.opts.batchTimeout())
	if err != nil {
		return nil, err
	}
	if f.Type != TypeResult || f.Result == nil {
		return nil, fmt.Errorf("expected result frame, got %q", f.Type)
	}
	if f.Result.ID != id {
		return nil, fmt.Errorf("result for batch %d while awaiting %d", f.Result.ID, id)
	}
	if f.Result.Error != "" {
		// The worker executed and failed deterministically; retrying the
		// identical batch cannot change the outcome.
		return nil, errBatch{errors.New(f.Result.Error)}
	}
	if len(f.Result.Results) != len(wire) {
		return nil, fmt.Errorf("batch returned %d results for %d jobs", len(f.Result.Results), len(wire))
	}
	return f.Result.Results, nil
}

// Close shuts the fleet down: a shutdown frame per worker, a short grace
// period to exit cleanly, then a hard kill. Safe to call more than once.
func (c *Coordinator) Close() {
	if c.closed {
		return
	}
	c.closed = true
	var wg sync.WaitGroup
	for _, s := range c.slots {
		if s.handle == nil {
			continue
		}
		wg.Add(1)
		go func(s *slot) {
			defer wg.Done()
			h := s.handle
			s.handle = nil
			h.Conn().WriteFrame(&Frame{Type: TypeShutdown})
			done := make(chan struct{})
			go func() { h.Wait(); close(done) }()
			timer := time.NewTimer(2 * time.Second)
			defer timer.Stop()
			select {
			case <-done:
			case <-timer.C:
				h.Kill()
				<-done
			}
		}(s)
	}
	wg.Wait()
}
