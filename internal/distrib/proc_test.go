package distrib

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestMain doubles as the worker entrypoint: when re-executed with
// DISTRIB_TEST_WORKER=1 the test binary runs the worker loop on its stdio
// instead of the test suite — the same single-binary arrangement cmd/remy
// uses for -worker, without needing cmd/remy built.
func TestMain(m *testing.M) {
	if os.Getenv("DISTRIB_TEST_WORKER") == "1" {
		opts := ServeOptions{Parallel: 1}
		if s := os.Getenv("DISTRIB_TEST_EXIT_AFTER"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad DISTRIB_TEST_EXIT_AFTER: %v\n", err)
				os.Exit(1)
			}
			opts.ExitAfterBatches = n
		}
		switch err := Serve(os.Stdin, os.Stdout, opts); err {
		case nil:
			os.Exit(0)
		case ErrChaosExit:
			os.Exit(3)
		default:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// reexecFactory spawns real worker processes by re-executing the test
// binary through ProcessFactory — the spawned-process transport end to end.
type reexecFactory struct {
	// exitAfter, if non-nil, gives a (slot, attempt) incarnation a chaos
	// exit budget (0 = none).
	exitAfter func(slot, attempt int) int
}

func (f reexecFactory) Start(slot, attempt int) (WorkerHandle, error) {
	pf := ProcessFactory{Path: os.Args[0], Env: []string{"DISTRIB_TEST_WORKER=1"}}
	if f.exitAfter != nil {
		if n := f.exitAfter(slot, attempt); n != 0 {
			pf.Env = append(pf.Env, fmt.Sprintf("DISTRIB_TEST_EXIT_AFTER=%d", n))
		}
	}
	return pf.Start(slot, attempt)
}

func TestSpawnedProcessWorkersMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and trains; too slow for -short")
	}
	fixture, err := os.ReadFile(filepath.Join("..", "optimizer", "testdata", "golden_train.json"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	c := newTestCoordinator(t, reexecFactory{}, Options{Procs: 2})
	got := trainBytes(t, c)
	if !bytes.Equal(fixture, got) {
		t.Fatal("training over spawned worker processes differs from the golden fixture")
	}
}

func TestSpawnedProcessWorkerKilledMidRound(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and trains; too slow for -short")
	}
	fixture, err := os.ReadFile(filepath.Join("..", "optimizer", "testdata", "golden_train.json"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	// Worker 0's first incarnation exits (non-zero, mid-round, without
	// answering) after three batches; the respawned process takes over.
	factory := reexecFactory{exitAfter: func(slot, attempt int) int {
		if slot == 0 && attempt == 0 {
			return 3
		}
		return 0
	}}
	c := newTestCoordinator(t, factory, Options{Procs: 2, RetryBackoff: 10 * time.Millisecond})
	got := trainBytes(t, c)
	if !bytes.Equal(fixture, got) {
		t.Fatal("training across a worker-process crash differs from the golden fixture")
	}
	st := c.Stats()
	if st.Respawns != 1 || st.Redispatches == 0 {
		t.Fatalf("expected exactly one process respawn with re-dispatch, got %+v", st)
	}
}
